"""Algorithm 2: the grouping KSJQ algorithm (paper Sec. 6.3).

Pipeline:

1. **Grouping** — categorize each base relation into SS/SN/NN under the
   thresholds ``k'_1 = k - l2`` and ``k'_2 = k - l1``.
2. **Join** — enumerate only the joined pairs of non-"no" cells:
   SS⋈SS ("yes", emitted immediately), SS⋈SN and SN⋈SS ("likely") and
   SN⋈SN ("may be"). Every pair containing an NN component is pruned
   without being joined (Th. 2/4). The full join is materialized only
   when a "may be" cell is non-empty, because it is that cell's check
   target (Algo 2, line 10).
3. **Verification** — "likely" tuples are checked against the join of
   the SS component's target set with the full partner relation (Algo 2
   lines 8-9); "may be" tuples against the full join.

Modes:

* ``"faithful"`` — the paper's algorithm verbatim. Exact for ``a = 0``;
  with aggregation it may return a *superset* of the true skyline
  (incomplete target sets for ``a >= 1``, unsound "yes" cell for
  ``a >= 2``; see DESIGN.md "Soundness errata") and a
  :class:`~repro.errors.SoundnessWarning` is emitted.
* ``"exact"`` — additionally verifies "yes" tuples and uses the
  complete local-attribute target predicate; equal to the naïve
  algorithm for strictly monotone aggregates (differential- and
  property-tested).
"""

from __future__ import annotations

import warnings

from typing import TYPE_CHECKING

import numpy as np

from ..errors import AlgorithmError, SoundnessWarning
from ..relational.join import JoinedView
from ..serving.deadline import Deadline, PartialProvider, active_deadline
from ..skyline.dominance import is_k_dominated, k_dominated_any
from .categorize import Categorization
from .params import KSJQParams
from .plan import JoinPlan
from .result import KSJQResult
from .targets import target_rows_exact, target_rows_paper
from .timing import PhaseClock
from .verify import sort_rows_for_early_exit

if TYPE_CHECKING:
    from .._typing import IntMatrix, IntVector

__all__ = ["run_grouping", "warn_if_unsound", "collect_cells"]


def warn_if_unsound(mode: str, params: KSJQParams, algorithm: str) -> None:
    """Emit a SoundnessWarning for faithful mode with aggregation (DESIGN.md).

    With ``a >= 1`` the paper's target sets are incomplete and with
    ``a >= 2`` even the unchecked "yes" cell can contain non-skylines,
    so faithful mode may return a superset of the true answer.
    """
    if mode == "faithful" and params.a >= 1:
        detail = (
            "its 'yes' cell is unverified and the paper's target sets are incomplete"
            if params.a >= 2
            else "the paper's target sets are incomplete"
        )
        warnings.warn(
            f"{algorithm} in faithful mode with a={params.a} aggregate attributes "
            f"may report false-positive skylines ({detail}); "
            "use mode='exact' for a guaranteed answer",
            SoundnessWarning,
            stacklevel=3,
        )


def collect_cells(
    plan: JoinPlan, cat1: Categorization, cat2: Categorization
) -> dict[str, IntMatrix]:
    """Enumerate joined pairs for the non-pruned fate cells."""
    return {
        "SS*SS": plan.compatible_pairs(cat1.ss_rows, cat2.ss_rows),
        "SS*SN": plan.compatible_pairs(cat1.ss_rows, cat2.sn_rows),
        "SN*SS": plan.compatible_pairs(cat1.sn_rows, cat2.ss_rows),
        "SN*SN": plan.compatible_pairs(cat1.sn_rows, cat2.sn_rows),
    }


def _vector_view(plan: JoinPlan) -> JoinedView:
    """A pair-less view used purely to materialize joined vectors."""
    return JoinedView(
        plan.left, plan.right, np.empty((0, 2), dtype=np.intp), aggregate=plan.aggregate
    )


def _partial_provider(
    accepted: list[IntMatrix],
    cell_pairs: IntMatrix | None = None,
    keep: list[int] | None = None,
) -> PartialProvider:
    """Pairs decided so far, for a ``DeadlineExceeded`` payload.

    ``accepted`` holds the cells already fully decided; ``cell_pairs``
    and ``keep`` (mutated in place by the caller's verification loop)
    add the in-flight cell's verified keeps. Only evaluated when a
    deadline actually trips.
    """

    def partial() -> tuple[tuple[int, ...], ...]:
        pairs = [tuple(int(x) for x in row) for cell in accepted for row in cell]
        if cell_pairs is not None and keep:
            pairs.extend(tuple(int(x) for x in cell_pairs[pos]) for pos in keep)
        return tuple(pairs)

    return partial


def run_grouping(plan: JoinPlan, k: int, mode: str = "faithful") -> KSJQResult:
    """Run Algorithm 2 on a prepared join plan."""
    if mode not in ("faithful", "exact"):
        raise AlgorithmError(f"unknown mode {mode!r} (use 'faithful' or 'exact')")
    params = plan.params(k)
    plan.require_strict_aggregate("grouping algorithm")
    warn_if_unsound(mode, params, "grouping algorithm")

    clock = PhaseClock()
    with clock.phase("grouping"):
        cat1 = plan.categorize_left(params.k1_prime)
        cat2 = plan.categorize_right(params.k2_prime)

    with clock.phase("join"):
        cells = collect_cells(plan, cat1, cat2)
        vec_view = _vector_view(plan)
        full_matrix = None
        if mode == "faithful" and cells["SN*SN"].shape[0]:
            full_matrix = sort_rows_for_early_exit(plan.view().oriented())

    accepted: list[IntMatrix] = []
    checked = 0
    deadline = active_deadline()
    with clock.phase("remaining"):
        if mode == "faithful":
            accepted.append(cells["SS*SS"])  # Th. 1/3: "yes" without checking
            checked += _verify_likely(
                plan, vec_view, params, cells["SS*SN"], ss_side="left", out=accepted,
                deadline=deadline,
            )
            checked += _verify_likely(
                plan, vec_view, params, cells["SN*SS"], ss_side="right", out=accepted,
                deadline=deadline,
            )
            if cells["SN*SN"].shape[0]:
                vectors = vec_view.oriented_for_pairs(cells["SN*SN"])
                if deadline is None:
                    # One blocked many-vs-matrix kernel pass instead of a
                    # Python-level per-row loop; identical keeps in
                    # identical order.
                    dominated = k_dominated_any(full_matrix, vectors, k)
                    checked += vectors.shape[0]
                    accepted.append(cells["SN*SN"][~dominated])
                else:
                    keep: list[int] = []
                    partial = _partial_provider(accepted, cells["SN*SN"], keep)
                    for i in range(vectors.shape[0]):
                        deadline.check(partial)
                        if not is_k_dominated(full_matrix, vectors[i], k):
                            keep.append(i)
                    checked += vectors.shape[0]
                    accepted.append(cells["SN*SN"][keep])
        else:
            checked += _verify_exact(
                plan, vec_view, params, cells, accepted, deadline=deadline
            )

    pairs = (
        np.concatenate([c for c in accepted if c.shape[0]], axis=0)
        if any(c.shape[0] for c in accepted)
        else np.empty((0, 2), dtype=np.intp)
    )
    return KSJQResult(
        algorithm="grouping",
        mode=mode,
        params=params,
        pairs=pairs,
        timings=clock.freeze(),
        left_counts=cat1.counts(),
        right_counts=cat2.counts(),
        cell_pair_counts={name: int(arr.shape[0]) for name, arr in cells.items()},
        checked=checked,
    )


def _verify_likely(
    plan: JoinPlan,
    vec_view: JoinedView,
    params: KSJQParams,
    cell_pairs: IntMatrix,
    ss_side: str,
    out: list[IntMatrix],
    deadline: Deadline | None = None,
) -> int:
    """Check one "likely" cell against target-set joins (Algo 2 lines 8-9).

    The target join is shared by all pairs having the same SS-side
    component, so pairs are processed grouped by that component.
    """
    if cell_pairs.shape[0] == 0:
        return 0
    k = params.k
    vectors = vec_view.oriented_for_pairs(cell_pairs)

    by_anchor: dict[int, list[int]] = {}
    anchor_col = 0 if ss_side == "left" else 1
    for pos in range(cell_pairs.shape[0]):
        by_anchor.setdefault(int(cell_pairs[pos, anchor_col]), []).append(pos)

    keep: list[int] = []
    partial = (
        _partial_provider(out, cell_pairs, keep) if deadline is not None else None
    )
    for anchor, positions in by_anchor.items():
        if deadline is not None:
            deadline.check(partial)
        if ss_side == "left":
            targets = target_rows_paper(plan.left, anchor, params.k1_prime)
            candidates = plan.compatible_pairs(targets, np.arange(len(plan.right)))
        else:
            targets = target_rows_paper(plan.right, anchor, params.k2_prime)
            candidates = plan.compatible_pairs(np.arange(len(plan.left)), targets)
        if candidates.shape[0] == 0:
            keep.extend(positions)
            continue
        matrix = sort_rows_for_early_exit(vec_view.oriented_for_pairs(candidates))
        for pos in positions:
            if deadline is not None:
                deadline.check(partial)
            if not is_k_dominated(matrix, vectors[pos], k):
                keep.append(pos)
    out.append(cell_pairs[sorted(keep)])
    return int(cell_pairs.shape[0])


def _verify_exact(
    plan: JoinPlan,
    vec_view: JoinedView,
    params: KSJQParams,
    cells: dict[str, IntMatrix],
    out: list[IntMatrix],
    deadline: Deadline | None = None,
) -> int:
    """Exact mode: verify every candidate cell with complete target sets."""
    k = params.k
    left_cache: dict[int, IntVector] = {}
    right_cache: dict[int, IntVector] = {}
    checked = 0
    for name in ("SS*SS", "SS*SN", "SN*SS", "SN*SN"):
        cell_pairs = cells[name]
        if cell_pairs.shape[0] == 0:
            continue
        vectors = vec_view.oriented_for_pairs(cell_pairs)
        keep: list[int] = []
        partial = (
            _partial_provider(out, cell_pairs, keep) if deadline is not None else None
        )
        for pos in range(cell_pairs.shape[0]):
            if deadline is not None:
                deadline.check(partial)
            u, v = int(cell_pairs[pos, 0]), int(cell_pairs[pos, 1])
            if u not in left_cache:
                left_cache[u] = target_rows_exact(plan.left, u, params.k1_min_local)
            if v not in right_cache:
                right_cache[v] = target_rows_exact(plan.right, v, params.k2_min_local)
            candidates = plan.compatible_pairs(left_cache[u], right_cache[v])
            if candidates.shape[0] == 0:
                keep.append(pos)
                continue
            matrix = vec_view.oriented_for_pairs(candidates)
            if not is_k_dominated(matrix, vectors[pos], k):
                keep.append(pos)
        checked += int(cell_pairs.shape[0])
        out.append(cell_pairs[keep])
    return checked
