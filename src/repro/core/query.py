"""High-level query facade: the primary public entry points.

Typical use::

    from repro import ksjq, find_k

    result = ksjq(flights_out, flights_in, k=7, aggregate="sum")
    print(result.count, result.timings.total)

    tuned = find_k(flights_out, flights_in, delta=100, aggregate="sum")
    print(tuned.k)
"""

from __future__ import annotations

from typing import Optional

from ..errors import AlgorithmError
from ..relational.join import ThetaCondition
from ..relational.relation import Relation
from .cartesian import run_cartesian
from .dominator import run_dominator
from .find_k import find_k_at_least_delta, find_k_at_most_delta
from .grouping import run_grouping
from .naive import run_naive
from .plan import JoinPlan
from .result import FindKResult, KSJQResult

__all__ = ["make_plan", "ksjq", "find_k"]

_ALGORITHMS = ("auto", "grouping", "dominator", "naive", "cartesian")


def make_plan(
    left: Relation,
    right: Relation,
    join: str = "equality",
    aggregate=None,
    theta=None,
) -> JoinPlan:
    """Build a reusable :class:`JoinPlan` (cheaper when issuing many queries).

    ``theta`` may be a single :class:`ThetaCondition` or a sequence of
    them (conjunction).
    """
    return JoinPlan(left, right, kind=join, aggregate=aggregate, theta=theta)


def ksjq(
    left: Relation,
    right: Relation,
    k: int,
    algorithm: str = "auto",
    mode: str = "faithful",
    join: str = "equality",
    aggregate=None,
    theta=None,
    plan: Optional[JoinPlan] = None,
) -> KSJQResult:
    """Answer a k-dominant skyline join query (Problems 1-2).

    Parameters
    ----------
    left, right:
        Base relations whose schemas define join / skyline / aggregate
        attributes and preference directions.
    k:
        Number of joined skyline attributes in which a dominator must be
        better-or-equal; must satisfy ``max(d1, d2) < k <= l1 + l2 + a``.
    algorithm:
        ``"auto"`` (grouping, or the cartesian fast path for cartesian
        joins), ``"grouping"`` (Algo 2), ``"dominator"`` (Algo 3),
        ``"naive"`` (Algo 1) or ``"cartesian"`` (Sec. 6.5).
    mode:
        ``"faithful"`` reproduces the paper exactly; ``"exact"`` adds
        the verification that closes the ``a >= 2`` soundness gap
        (DESIGN.md errata). Ignored by ``"naive"``, which is always
        exact.
    join:
        ``"equality"``, ``"cartesian"`` or ``"theta"``.
    aggregate:
        Aggregate function (name or object) for schemas with aggregate
        attributes, e.g. ``"sum"``.
    theta:
        Join condition (or a list of conditions, interpreted as a
        conjunction) for ``join="theta"``.
    plan:
        Pre-built plan; when given, ``join``/``aggregate``/``theta`` are
        ignored.
    """
    if plan is None:
        plan = make_plan(left, right, join=join, aggregate=aggregate, theta=theta)
    if algorithm not in _ALGORITHMS:
        raise AlgorithmError(f"unknown algorithm {algorithm!r}; choose from {_ALGORITHMS}")
    if algorithm == "auto":
        algorithm = "cartesian" if plan.kind == "cartesian" else "grouping"
    if algorithm == "naive":
        return run_naive(plan, k)
    if algorithm == "grouping":
        return run_grouping(plan, k, mode=mode)
    if algorithm == "dominator":
        return run_dominator(plan, k, mode=mode)
    return run_cartesian(plan, k, mode=mode)


def find_k(
    left: Relation,
    right: Relation,
    delta: int,
    method: str = "binary",
    objective: str = "at_least",
    mode: str = "faithful",
    join: str = "equality",
    aggregate=None,
    theta=None,
    plan: Optional[JoinPlan] = None,
) -> FindKResult:
    """Tune ``k`` from a desired skyline cardinality δ (Problems 3-4).

    ``objective="at_least"`` finds the smallest k returning >= δ skyline
    tuples (Problem 3); ``"at_most"`` the largest k returning <= δ
    (Problem 4, via the paper's reduction). ``method`` is ``"binary"``
    (Algo 6), ``"range"`` (Algo 5) or ``"naive"`` (Algo 4).
    """
    if plan is None:
        plan = make_plan(left, right, join=join, aggregate=aggregate, theta=theta)
    if objective == "at_least":
        return find_k_at_least_delta(plan, delta, method=method, mode=mode)
    if objective == "at_most":
        return find_k_at_most_delta(plan, delta, method=method, mode=mode)
    raise AlgorithmError(f"unknown objective {objective!r} (use 'at_least' or 'at_most')")
