"""High-level query facade: the legacy one-shot entry points.

These remain fully supported, but are now thin wrappers over a shared
module-default :class:`repro.api.Engine`: arguments are validated
*before* any join structure is built (bad parameters never pay the
join-preparation cost), and repeated queries over equal-content
relations reuse the engine's cached :class:`JoinPlan`.

Typical use::

    from repro import ksjq, find_k

    result = ksjq(flights_out, flights_in, k=7, aggregate="sum")
    print(result.count, result.timings.total)

    tuned = find_k(flights_out, flights_in, delta=100, aggregate="sum")
    print(tuned.k)

For many queries over the same relations — or control over caching —
hold an :class:`repro.api.Engine` yourself::

    engine = repro.Engine()
    result = engine.query(flights_out, flights_in).aggregate("sum").k(7).run()
"""

from __future__ import annotations


from typing import TYPE_CHECKING

from ..relational.relation import Relation
from .plan import JoinPlan
from .result import FindKResult, KSJQResult

if TYPE_CHECKING:
    from .._typing import AggregateLike, ThetaLike
    from ..api.engine import Engine

__all__ = ["make_plan", "ksjq", "find_k", "default_engine"]

_DEFAULT_ENGINE: Engine | None = None


def default_engine() -> Engine:
    """The process-wide engine backing :func:`ksjq` and :func:`find_k`.

    Created lazily on first use; shared so that repeated facade calls
    over the same relations hit one plan cache. Cached plans keep their
    source relations (and any memoized joined view) alive, so the
    capacity is deliberately small; long-running processes that stream
    many distinct large relation pairs through the facade should call
    ``default_engine().clear_cache()`` periodically, or pass their own
    ``engine=Engine(max_plans=0)``.
    """
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        from ..api.engine import Engine

        _DEFAULT_ENGINE = Engine(max_plans=8)
    return _DEFAULT_ENGINE


def make_plan(
    left: Relation,
    right: Relation,
    join: str = "equality",
    aggregate: AggregateLike | None = None,
    theta: ThetaLike | None = None,
) -> JoinPlan:
    """Build a reusable :class:`JoinPlan` (cheaper when issuing many queries).

    ``theta`` may be a single :class:`ThetaCondition` or a sequence of
    them (conjunction). Unlike :meth:`repro.api.Engine.plan`, this always
    builds a fresh plan and never consults a cache.
    """
    return JoinPlan(left, right, kind=join, aggregate=aggregate, theta=theta)


def ksjq(
    left: Relation,
    right: Relation,
    k: int,
    algorithm: str = "auto",
    mode: str = "faithful",
    join: str = "equality",
    aggregate: AggregateLike | None = None,
    theta: ThetaLike | None = None,
    plan: JoinPlan | None = None,
    engine: Engine | None = None,
    parallelism: int | str = "auto",
) -> KSJQResult:
    """Answer a k-dominant skyline join query (Problems 1-2).

    Parameters
    ----------
    left, right:
        Base relations whose schemas define join / skyline / aggregate
        attributes and preference directions.
    k:
        Number of joined skyline attributes in which a dominator must be
        better-or-equal; must satisfy ``max(d1, d2) < k <= l1 + l2 + a``.
    algorithm:
        ``"auto"`` (cost-based choice over the plan's cardinality
        statistics), ``"grouping"`` (Algo 2), ``"dominator"`` (Algo 3),
        ``"naive"`` (Algo 1) or ``"cartesian"`` (Sec. 6.5).
    mode:
        ``"faithful"`` reproduces the paper exactly; ``"exact"`` adds
        the verification that closes the ``a >= 2`` soundness gap
        (DESIGN.md errata). Ignored by ``"naive"``, which is always
        exact.
    join:
        ``"equality"``, ``"cartesian"`` or ``"theta"``.
    aggregate:
        Aggregate function (name or object) for schemas with aggregate
        attributes, e.g. ``"sum"``.
    theta:
        Join condition (or a list of conditions, interpreted as a
        conjunction) for ``join="theta"``.
    plan:
        Pre-built plan; when given, ``join``/``aggregate``/``theta`` are
        ignored and the engine's plan cache is bypassed.
    engine:
        The :class:`repro.api.Engine` to run on; defaults to the shared
        module engine (so repeated calls reuse cached plans).
    parallelism:
        ``"auto"`` (cost model decides serial-vs-sharded execution) or
        an explicit shard-worker count for the parallel path; see
        :mod:`repro.core.parallel`.
    """
    from ..api.spec import QuerySpec

    if plan is not None:
        join, aggregate, theta = plan.kind, plan.aggregate, plan.theta_conditions
    # Spec construction validates algorithm/mode/join/k up front, before
    # any join preparation happens.
    spec = QuerySpec.for_ksjq(
        k=k,
        algorithm=algorithm,
        mode=mode,
        join=join,
        aggregate=aggregate,
        theta=theta,
        parallelism=parallelism,
    )
    eng = engine if engine is not None else default_engine()
    return eng.execute(left, right, spec, plan=plan)


def find_k(
    left: Relation,
    right: Relation,
    delta: int,
    method: str = "binary",
    objective: str = "at_least",
    mode: str = "faithful",
    join: str = "equality",
    aggregate: AggregateLike | None = None,
    theta: ThetaLike | None = None,
    plan: JoinPlan | None = None,
    engine: Engine | None = None,
) -> FindKResult:
    """Tune ``k`` from a desired skyline cardinality δ (Problems 3-4).

    ``objective="at_least"`` finds the smallest k returning >= δ skyline
    tuples (Problem 3); ``"at_most"`` the largest k returning <= δ
    (Problem 4, via the paper's reduction). ``method`` is ``"binary"``
    (Algo 6), ``"range"`` (Algo 5) or ``"naive"`` (Algo 4). ``plan`` and
    ``engine`` behave as in :func:`ksjq`.
    """
    from ..api.spec import QuerySpec

    if plan is not None:
        join, aggregate, theta = plan.kind, plan.aggregate, plan.theta_conditions
    spec = QuerySpec.for_find_k(
        delta=delta,
        method=method,
        objective=objective,
        mode=mode,
        join=join,
        aggregate=aggregate,
        theta=theta,
    )
    eng = engine if engine is not None else default_engine()
    return eng.execute(left, right, spec, plan=plan)
