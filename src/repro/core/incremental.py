"""Delta maintenance of live KSJQ answers (the streaming subsystem core).

A :class:`MaintainedResult` is a query answer that *consumes*
:class:`~repro.relational.dataset.MutationDelta` events from its input
datasets instead of being invalidated by them. The cached state is the
full joined matrix plus a winner mask over it, and the two delta paths
are classic incremental-skyline moves adapted to k-dominance:

* **Insert** — a new base tuple can only *add* joined pairs it
  participates in. Those delta pairs are enumerated through
  :meth:`~repro.core.plan.JoinPlan.compatible_pairs`, reduced to a
  local candidate superset with the blocked scan-1 kernel
  (:func:`~repro.skyline.kdominant.k_dominant_candidates_block`), and
  the candidates are verified against the **full** merged matrix with
  :func:`~repro.skyline.dominance.k_dominated_any`. Cached winners can
  only be evicted by a newcomer (existing tuples did not dominate them
  before), so the eviction re-check runs every old winner against the
  full newcomer block — not just its local candidates, because a
  newcomer eliminated by another newcomer can still k-dominate an old
  winner (k-dominance is not transitive).
* **Delete** — pairs containing a dropped tuple leave the matrix, and
  surviving winners stay winners (removal never adds dominators). A
  surviving non-winner can be promoted only if at least one of its
  dominators was removed, so the re-promotion pass filters the
  non-winners through the removed vectors and then re-verifies the
  touched candidates against the full surviving matrix — never against
  the surviving winners alone, for the same non-transitivity reason
  that forces the cross-shard verification of
  :mod:`repro.core.parallel` (a dominator need not itself be a winner).

Both paths are ``O(Δ_pairs · J)`` against the ``O(J^2)`` of a
from-scratch recompute; when the cost model
(:meth:`~repro.core.plan.PlanStats.delta_maintenance_cost`) says the
delta is too large for that to pay off — or the delta cannot be applied
structurally (``replace``, a missed version, a cascade or
faithful-family spec) — the handle falls back to a full recompute
through the engine, which is always correct.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..errors import ParameterError
from ..relational.join import JoinedView
from ..resilience import checkpoint, resilience_stats
from ..skyline.dominance import k_dominated_any
from ..skyline.kdominant import k_dominant_candidates_block
from .plan import CascadePlan, JoinPlan
from .result import KSJQResult, QueryResult
from .timing import PhaseClock
from .verify import sort_rows_for_early_exit

if TYPE_CHECKING:
    from .._typing import BoolVector, FloatMatrix, IntMatrix
    from ..api.engine import Engine
    from ..api.spec import QuerySpec
    from ..relational.dataset import Dataset, MutationDelta
    from ..relational.relation import Relation

__all__ = ["MaintainedResult", "MaintenanceCounters", "DEFAULT_FALLBACK_RATIO"]

#: Maintain a delta only while its estimated cost stays below this
#: fraction of the recompute cost; beyond it, recomputing is cheaper.
DEFAULT_FALLBACK_RATIO = 0.5


@dataclass
class MaintenanceCounters:
    """Per-handle maintenance statistics.

    ``applied_deltas`` counts every mutation the handle answered
    (incrementally or by recompute); ``fallback_recomputes`` the
    subset answered by a full recompute; ``delta_rows`` the base rows
    inserted plus deleted across them; ``failed_deltas`` mutations
    whose application *failed* — those only dirty the handle (the
    recompute is deferred to the next read) and are counted in none of
    the other three.
    """

    applied_deltas: int = 0
    fallback_recomputes: int = 0
    delta_rows: int = 0
    failed_deltas: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "applied_deltas": self.applied_deltas,
            "fallback_recomputes": self.fallback_recomputes,
            "delta_rows": self.delta_rows,
            "failed_deltas": self.failed_deltas,
        }


def _winner_mask(pairs: IntMatrix, winner_pairs: IntMatrix) -> BoolVector:
    """Boolean mask over ``pairs`` marking the rows present in
    ``winner_pairs`` (both are (m x 2) row-index pair arrays)."""
    if pairs.shape[0] == 0:
        return np.zeros(0, dtype=bool)
    if winner_pairs.shape[0] == 0:
        return np.zeros(pairs.shape[0], dtype=bool)
    stride = np.intp(int(pairs[:, 1].max()) + 1)
    keys = pairs[:, 0] * stride + pairs[:, 1]
    winner_keys = winner_pairs[:, 0] * stride + winner_pairs[:, 1]
    return np.isin(keys, winner_keys)


class MaintainedResult:
    """A live, subscription-backed KSJQ (or cascade) answer.

    Obtained from :meth:`repro.api.Engine.maintain`; every input must be
    a registered :class:`~repro.relational.dataset.Dataset` so the
    handle has a mutation feed. After any ``insert_rows`` /
    ``delete_rows`` / ``replace`` on an input, :meth:`result` returns
    the answer over the *new* snapshots — maintained incrementally when
    the spec and the delta allow it, recomputed from scratch otherwise.

    The incremental paths apply to two-way joins whose answer family is
    the exact joined-view skyline (``mode="exact"``, or an explicitly
    exact algorithm — ``naive``/``parallel``). Cascade specs and
    faithful-family answers are still maintained correctly, via full
    recompute on every mutation.

    Concurrency contract (checked by the repo linter's R2 rule): the
    handle's own reentrant lock is a leaf — it is taken from dataset
    notification callbacks (no dataset/catalog lock held there, per the
    locked-install / unlocked-notify split) and never while the engine
    holds its lock. Internal helpers re-enter it.

    Resilience: a delta application that *fails* midway (an injected
    ``"delta.apply"`` fault, or any unexpected error) can never poison
    the handle — the failure marks the handle **dirty** and the next
    :meth:`result` read recomputes from fresh snapshots instead of
    re-raising forever (see ``docs/resilience.md``).

    # guarded-by: _lock: _plan, _versions, _pairs, _matrix, _winners, _result, _closed, _counters, _dirty
    """

    def __init__(
        self,
        engine: "Engine",
        datasets: tuple["Dataset", ...],
        spec: "QuerySpec",
        fallback_ratio: float = DEFAULT_FALLBACK_RATIO,
    ) -> None:
        if spec.problem != "ksjq":
            raise ParameterError(
                "only ksjq answers can be maintained; find_k specs re-run "
                "the whole search and should use engine.prepare()"
            )
        if not datasets:
            raise ParameterError("maintain() needs at least one dataset input")
        if not fallback_ratio > 0:
            raise ParameterError(
                f"fallback_ratio must be > 0, got {fallback_ratio}"
            )
        self._engine = engine
        self._spec = spec
        self._datasets = datasets
        self._fallback_ratio = float(fallback_ratio)
        # The incremental paths maintain the *exact* joined-view skyline,
        # so they only serve specs guaranteed to answer from that family:
        # exact mode (every algorithm verifies), or an explicitly exact
        # algorithm. Faithful grouping/dominator/cartesian — and "auto",
        # which may pick them — can return paper-faithful supersets, and
        # fall back to full recompute on every mutation instead.
        self._delta_capable = spec.join != "cascade" and (
            spec.mode == "exact"
            or spec.algorithm in ("naive", "parallel", "indexed")
        )
        self._lock = threading.RLock()
        self._closed = False
        self._dirty = False
        self._counters = MaintenanceCounters()
        self._plan: JoinPlan | CascadePlan | None = None
        self._versions: dict[int, int] = {}
        self._pairs: IntMatrix = np.empty((0, 2), dtype=np.intp)
        self._matrix: FloatMatrix = np.empty((0, 0), dtype=np.float64)
        self._winners: BoolVector = np.zeros(0, dtype=bool)
        self._result: QueryResult | None = None
        self._recompute()

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------
    @property
    def spec(self) -> "QuerySpec":
        """The maintained :class:`~repro.api.spec.QuerySpec`."""
        return self._spec

    @property
    def closed(self) -> bool:
        """Has :meth:`close` been called?"""
        with self._lock:
            return self._closed

    def result(self) -> QueryResult:
        """The current answer (always reflects every processed delta).

        A handle dirtied by a failed delta application recomputes here,
        on the read path — one recompute amortized over any number of
        failed deltas, and a raising delta never wedges the handle.
        """
        with self._lock:
            if self._dirty:
                self._recompute()
            assert self._result is not None  # set by __init__
            return self._result

    @property
    def dirty(self) -> bool:
        """Did a failed delta leave the cached answer stale (the next
        read will recompute)?"""
        with self._lock:
            return self._dirty

    @property
    def count(self) -> int:
        """Number of result tuples in the current answer."""
        return self.result().count

    def stats(self) -> dict[str, int]:
        """Per-handle maintenance counters as a plain dict."""
        with self._lock:
            return self._counters.as_dict()

    def refresh(self) -> QueryResult:
        """Force a full recompute from the latest snapshots (not counted
        as a fallback — the caller explicitly asked for it)."""
        with self._lock:
            self._recompute()
            assert self._result is not None
            return self._result

    def close(self) -> None:
        """Detach from the engine's delta routing; the last answer stays
        readable but no further mutations are applied."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._engine._unregister_maintained(self)

    def __enter__(self) -> "MaintainedResult":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        names = " x ".join(repr(ds.name) for ds in self._datasets)
        state = "closed" if self.closed else "live"
        return f"<MaintainedResult {names} k={self._spec.k} [{state}]>"

    # ------------------------------------------------------------------
    # Delta intake
    # ------------------------------------------------------------------
    def _on_delta(self, dataset: "Dataset", delta: "MutationDelta") -> None:
        """Engine routing hook: apply one mutation to the cached answer.

        The delta travels dataset -> catalog -> engine -> here, each hop
        notifying outside its own lock (the locked-install /
        unlocked-notify split), and after the plain version listeners
        invalidated the engine caches. Runs on the mutating thread with
        no engine/catalog/dataset lock held; mutations of datasets that
        are not inputs of this handle are ignored via the version map.
        """
        fallback = False
        failed = False
        with self._lock:
            if self._closed:
                return
            recorded = self._versions.get(dataset.uid)
            if recorded is None or delta.version <= recorded:
                return  # not our input / already covered by a recompute
            relation, version = dataset.snapshot()
            in_sync = delta.version == recorded + 1 and version == delta.version
            try:
                if (
                    in_sync
                    and self._delta_capable
                    and delta.kind in ("insert", "delete")
                    and self._within_budget(dataset, delta)
                ):
                    if delta.kind == "insert":
                        self._apply_insert(dataset, relation, delta)
                    else:
                        self._apply_delete(dataset, relation, delta)
                else:
                    fallback = True
                    self._recompute()
            except Exception:  # noqa: BLE001 - degradation boundary
                # A failed application must not poison the handle:
                # mark it dirty so the next read recomputes from fresh
                # snapshots. The stale cached answer is never served —
                # result() checks the flag under this same lock. No
                # recompute ran *here* (it is deferred to the dirty
                # read), so the delta counts as failed — not as
                # applied, and not as a fallback recompute.
                self._dirty = True
                failed = True
                fallback = False
                resilience_stats().record("delta_failures")
            if failed:
                self._counters.failed_deltas += 1
            else:
                self._counters.applied_deltas += 1
                self._counters.delta_rows += delta.rows_touched
                if fallback:
                    self._counters.fallback_recomputes += 1
        self._engine._record_maintenance(delta.rows_touched, fallback, failed=failed)

    def _resync(self) -> None:
        """Recompute if any input advanced past the recorded versions
        (closes the registration race in :meth:`Engine.maintain`)."""
        with self._lock:
            if self._closed:
                return
            stale = any(
                ds.version != self._versions.get(ds.uid) for ds in self._datasets
            )
            if stale:
                self._recompute()

    def _within_budget(self, dataset: "Dataset", delta: "MutationDelta") -> bool:
        """Cost-model gate: is the delta small enough to maintain?

        Compares :meth:`PlanStats.delta_maintenance_cost` on every side
        the mutated dataset feeds (both, for a self-join) against
        ``fallback_ratio`` times :meth:`PlanStats.recompute_cost`.
        """
        with self._lock:
            assert isinstance(self._plan, JoinPlan)  # _delta_capable => two-way
            stats = self._plan.stats()
            cost = 0.0
            if self._datasets[0].uid == dataset.uid:
                cost += stats.delta_maintenance_cost(delta.rows_touched, "left")
            if self._datasets[1].uid == dataset.uid:
                cost += stats.delta_maintenance_cost(delta.rows_touched, "right")
            return cost <= self._fallback_ratio * stats.recompute_cost()

    # ------------------------------------------------------------------
    # Full recompute (initial answer + correctness fallback)
    # ------------------------------------------------------------------
    def _recompute(self) -> None:
        """Rebuild the answer (and the delta state) from fresh snapshots.

        Runs the spec's own algorithm through the engine dispatcher, so
        the maintained answer is exactly what ``engine.execute`` would
        return for the same spec over the same snapshots.
        """
        with self._lock:
            snapshots = [ds.snapshot() for ds in self._datasets]
            relations = tuple(rel for rel, _ in snapshots)
            self._versions = {
                ds.uid: version
                for ds, (_, version) in zip(self._datasets, snapshots)
            }
            plan = self._build_plan(relations)
            self._plan = plan
            result = self._engine._run(plan, self._spec)
            self._result = result.with_provenance(self._spec, plan)
            self._dirty = False
            if self._delta_capable:
                assert isinstance(plan, JoinPlan)
                assert isinstance(result, KSJQResult)
                view = plan.view()
                self._pairs = np.asarray(view.pairs, dtype=np.intp)
                self._matrix = view.oriented()
                self._winners = _winner_mask(self._pairs, result.pairs)

    def _build_plan(
        self, relations: tuple["Relation", ...]
    ) -> JoinPlan | CascadePlan:
        if self._spec.join == "cascade":
            return CascadePlan(
                relations, hops=self._spec.hops, aggregate=self._spec.aggregate
            )
        return JoinPlan(
            relations[0],
            relations[1],
            kind=self._spec.join,
            aggregate=self._spec.aggregate,
            theta=self._spec.theta or None,
        )

    # ------------------------------------------------------------------
    # Insert path
    # ------------------------------------------------------------------
    def _apply_insert(
        self, dataset: "Dataset", relation: "Relation", delta: "MutationDelta"
    ) -> None:
        """Maintain under an append: generate the delta pairs, merge and
        verify them, evict the winners the newcomers now dominate."""
        with self._lock:
            checkpoint("delta.apply")
            assert isinstance(self._plan, JoinPlan)
            assert self._spec.k is not None
            clock = PhaseClock()
            left_mutated = self._datasets[0].uid == dataset.uid
            right_mutated = self._datasets[1].uid == dataset.uid
            left_new = relation if left_mutated else self._plan.left
            right_new = relation if right_mutated else self._plan.right
            plan_new = self._build_plan((left_new, right_new))
            assert isinstance(plan_new, JoinPlan)
            with clock.phase("join"):
                chunks: list[IntMatrix] = []
                if left_mutated:
                    # New left rows against every current right row (for
                    # a self-join this covers newcomer x newcomer too).
                    chunks.append(
                        plan_new.compatible_pairs(
                            delta.inserted, range(len(right_new))
                        )
                    )
                if right_mutated:
                    # Old left rows against the new right rows; inserts
                    # append, so old rows are exactly [0, old_size).
                    old_left = delta.old_size if left_mutated else len(left_new)
                    chunks.append(
                        plan_new.compatible_pairs(range(old_left), delta.inserted)
                    )
                delta_pairs = (
                    np.concatenate(chunks, axis=0)
                    if chunks
                    else np.empty((0, 2), dtype=np.intp)
                )
                if delta_pairs.shape[0]:
                    view = JoinedView(
                        left_new,
                        right_new,
                        delta_pairs,
                        aggregate=self._plan.aggregate,
                    )
                    new_vecs = view.oriented()
                else:
                    new_vecs = np.empty(
                        (0, self._matrix.shape[1]), dtype=np.float64
                    )
            with clock.phase("remaining"):
                checked = self._merge_inserted(delta_pairs, new_vecs, self._spec.k)
            self._plan = plan_new
            self._versions[dataset.uid] = delta.version
            self._freeze_result(plan_new, clock, checked)

    def _merge_inserted(
        self, delta_pairs: IntMatrix, new_vecs: FloatMatrix, k: int
    ) -> int:
        """Merge newcomer pairs into the cached state; returns the number
        of verified candidates.

        Local candidate generation over the newcomer block is sound (a
        scan-1 rejection cites a real tuple), but survival is not —
        every local candidate is re-verified against the *full* merged
        matrix, and winner eviction checks the full newcomer block,
        because k-dominance is non-transitive.
        """
        with self._lock:
            full_matrix = np.concatenate([self._matrix, new_vecs], axis=0)
            full_pairs = np.concatenate([self._pairs, delta_pairs], axis=0)
            checked = 0
            newcomer_winners = np.zeros(new_vecs.shape[0], dtype=bool)
            if new_vecs.shape[0]:
                local_candidates = k_dominant_candidates_block(new_vecs, k)
                candidate_vecs = new_vecs[local_candidates]
                dominated = k_dominated_any(
                    sort_rows_for_early_exit(full_matrix), candidate_vecs, k
                )
                newcomer_winners[local_candidates[~dominated]] = True
                checked += int(candidate_vecs.shape[0])
            old_winner_rows = np.flatnonzero(self._winners)
            evicted = np.zeros(old_winner_rows.shape[0], dtype=bool)
            if old_winner_rows.size and new_vecs.shape[0]:
                evicted = k_dominated_any(
                    new_vecs, self._matrix[old_winner_rows], k
                )
                checked += int(old_winner_rows.size)
            winners = np.concatenate([self._winners, newcomer_winners])
            winners[old_winner_rows[evicted]] = False
            self._pairs = full_pairs
            self._matrix = full_matrix
            self._winners = winners
            return checked

    # ------------------------------------------------------------------
    # Delete path
    # ------------------------------------------------------------------
    def _apply_delete(
        self, dataset: "Dataset", relation: "Relation", delta: "MutationDelta"
    ) -> None:
        """Maintain under a delete: drop the removed pairs, compact the
        row indices, re-promote previously-dominated candidates."""
        with self._lock:
            checkpoint("delta.apply")
            assert isinstance(self._plan, JoinPlan)
            assert self._spec.k is not None
            clock = PhaseClock()
            left_mutated = self._datasets[0].uid == dataset.uid
            right_mutated = self._datasets[1].uid == dataset.uid
            deleted = np.asarray(delta.deleted, dtype=np.intp)  # sorted
            with clock.phase("join"):
                removed = np.zeros(self._pairs.shape[0], dtype=bool)
                if left_mutated:
                    removed |= np.isin(self._pairs[:, 0], deleted)
                if right_mutated:
                    removed |= np.isin(self._pairs[:, 1], deleted)
                removed_vecs = self._matrix[removed]
                surviving = ~removed
                surviving_pairs = self._pairs[surviving].copy()
                surviving_matrix = self._matrix[surviving]
                surviving_winners = self._winners[surviving].copy()
                # delete_rows compacts the snapshot, so an old row index
                # i becomes i - #{deleted rows below i}.
                if left_mutated and surviving_pairs.shape[0]:
                    surviving_pairs[:, 0] -= np.searchsorted(
                        deleted, surviving_pairs[:, 0], side="left"
                    )
                if right_mutated and surviving_pairs.shape[0]:
                    surviving_pairs[:, 1] -= np.searchsorted(
                        deleted, surviving_pairs[:, 1], side="left"
                    )
            with clock.phase("remaining"):
                checked = self._repromote(
                    surviving_pairs,
                    surviving_matrix,
                    surviving_winners,
                    removed_vecs,
                    self._spec.k,
                )
            left_new = relation if left_mutated else self._plan.left
            right_new = relation if right_mutated else self._plan.right
            plan_new = self._build_plan((left_new, right_new))
            assert isinstance(plan_new, JoinPlan)
            self._plan = plan_new
            self._versions[dataset.uid] = delta.version
            self._freeze_result(plan_new, clock, checked)

    def _repromote(
        self,
        surviving_pairs: IntMatrix,
        surviving_matrix: FloatMatrix,
        surviving_winners: BoolVector,
        removed_vecs: FloatMatrix,
        k: int,
    ) -> int:
        """Re-promotion pass of the delete path; returns verified count.

        Surviving winners stay winners (a delete never adds dominators).
        A surviving non-winner is a promotion candidate iff some
        *removed* vector k-dominated it — its other dominators may also
        be gone, so each candidate is re-verified against the full
        surviving matrix (a dominator need not be a winner; verifying
        against surviving winners only would be the non-transitivity
        bug the 3-cycle tests pin down).
        """
        with self._lock:
            checked = 0
            candidate_rows = np.flatnonzero(~surviving_winners)
            if removed_vecs.shape[0] == 0:
                candidate_rows = candidate_rows[:0]
            elif candidate_rows.size:
                touched = k_dominated_any(
                    removed_vecs, surviving_matrix[candidate_rows], k
                )
                candidate_rows = candidate_rows[touched]
            if candidate_rows.size:
                dominated = k_dominated_any(
                    sort_rows_for_early_exit(surviving_matrix),
                    surviving_matrix[candidate_rows],
                    k,
                )
                surviving_winners[candidate_rows[~dominated]] = True
                checked = int(candidate_rows.size)
            self._pairs = surviving_pairs
            self._matrix = surviving_matrix
            self._winners = surviving_winners
            return checked

    # ------------------------------------------------------------------
    def _freeze_result(
        self, plan: JoinPlan, clock: PhaseClock, checked: int
    ) -> None:
        """Package the cached delta state as the current KSJQResult."""
        with self._lock:
            assert self._spec.k is not None
            result = KSJQResult(
                algorithm="maintained",
                mode="exact",
                params=plan.params(self._spec.k),
                pairs=self._pairs[self._winners],
                timings=clock.freeze(),
                checked=checked,
            )
            self._result = result.with_provenance(self._spec, plan)
