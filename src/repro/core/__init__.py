"""KSJQ core: categorization, algorithms 1-6, query facade.

Public entry points are :func:`repro.core.query.ksjq` and
:func:`repro.core.query.find_k`; the per-algorithm runners
(:func:`run_naive`, :func:`run_grouping`, :func:`run_dominator`,
:func:`run_cartesian`) are exposed for benchmarking and testing.
"""

from .cascade import (
    CASCADE_ALGORITHMS,
    CascadeResult,
    Hop,
    cascade_ksjq,
    cascade_progressive,
    run_cascade_naive,
    run_cascade_pruned,
)
from .categorize import (
    FATE_TABLE,
    Categorization,
    Category,
    Fate,
    categorize,
    categorize_theta,
)
from .cartesian import run_cartesian
from .dominator import run_dominator
from .find_k import find_k_at_least_delta, find_k_at_most_delta
from .grouping import run_grouping
from .incremental import (
    DEFAULT_FALLBACK_RATIO,
    MaintainedResult,
    MaintenanceCounters,
)
from .index import (
    CellPartition,
    DominanceIndex,
    IndexStats,
    run_cascade_indexed,
    run_indexed,
)
from .naive import run_naive
from .parallel import (
    ShardPlan,
    batch_workers,
    plan_shards,
    run_cascade_parallel,
    run_parallel,
    shard_bounds,
)
from .params import CascadeParams, KSJQParams
from .plan import CascadePlan, CascadeStats, JoinPlan, PlanStats
from .progressive import ksjq_progressive
from .query import default_engine, find_k, ksjq, make_plan
from .result import FindKResult, FindKStep, KSJQResult, QueryResult
from .targets import target_rows_exact, target_rows_paper
from .timing import PHASES, PhaseClock, TimingBreakdown

__all__ = [
    "CASCADE_ALGORITHMS",
    "CascadeParams",
    "CascadePlan",
    "CascadeResult",
    "CascadeStats",
    "CellPartition",
    "DEFAULT_FALLBACK_RATIO",
    "DominanceIndex",
    "FATE_TABLE",
    "Categorization",
    "Category",
    "Fate",
    "IndexStats",
    "FindKResult",
    "FindKStep",
    "Hop",
    "JoinPlan",
    "KSJQParams",
    "KSJQResult",
    "MaintainedResult",
    "MaintenanceCounters",
    "PHASES",
    "PhaseClock",
    "PlanStats",
    "QueryResult",
    "ShardPlan",
    "TimingBreakdown",
    "batch_workers",
    "cascade_ksjq",
    "cascade_progressive",
    "categorize",
    "categorize_theta",
    "default_engine",
    "find_k",
    "find_k_at_least_delta",
    "find_k_at_most_delta",
    "ksjq",
    "ksjq_progressive",
    "make_plan",
    "plan_shards",
    "run_cartesian",
    "run_cascade_indexed",
    "run_cascade_naive",
    "run_cascade_parallel",
    "run_cascade_pruned",
    "run_dominator",
    "run_indexed",
    "run_grouping",
    "run_naive",
    "run_parallel",
    "shard_bounds",
    "target_rows_exact",
    "target_rows_paper",
]
