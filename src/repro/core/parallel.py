"""Sharded parallel execution of KSJQ and cascade queries.

The scalability figures are bounded by one candidate-generation pass
over the joined view. This module partitions that pass: the joined
candidate space — the outer (left) relation's share of the joined
view for two-way joins, the first hop's share of the chain set for
cascades — is split into contiguous **shards**, each shard generates
its local skyline candidates independently (a worker per shard), and a
mandatory **cross-shard verification** pass closes the merge.

The verification pass is not an optimization detail but a correctness
requirement: k-dominance is *non-transitive* (paper Sec. 2.2), so a
tuple eliminated inside one shard may still k-dominate a candidate
that survived another shard. Merged candidates are therefore re-checked
against **all** rows of every shard — the full joined matrix, not just
the surviving candidates — using the vectorized block kernels of
:mod:`repro.skyline.dominance` (:func:`~repro.skyline.dominance.k_dominated_any`
over the stacked shard matrices). Because that second scan is exact,
the answer is independent of the shard count: ``parallelism ∈ {1, 2,
4, ...}`` all return byte-identical result sets, equal to the naïve
(ground-truth) algorithm.

Executor choice follows the shard size: large shards amortize a
``ProcessPoolExecutor`` (fork/spawn + pickling one shard each); small
shards fall back to a thread pool, where the block kernels still
overlap because numpy releases the GIL inside large comparison loops;
one shard (or one worker) runs inline. :func:`plan_shards` makes that
decision from the plan's exact cardinality statistics and is what
``Engine.explain`` reports.

Execution is **resilient**: shard tasks are pure, so transient
failures — a crashed pool worker, an injected fault from
:mod:`repro.resilience` — are absorbed by re-executing only the failed
shard buckets with bounded backoff, rebuilding broken pools, and
degrading process → thread → serial (see ``docs/resilience.md``).
Because the cross-shard verification pass always re-checks merged
candidates against the full matrix, recovery never changes the answer:
recovered runs stay byte-identical to the clean serial path.

``Engine.execute_many`` composes with per-query parallelism through
:func:`batch_workers`: while a batch fans out over N threads, each
query's auto-resolved worker count is capped to its fair share of the
machine so the batch never oversubscribes the CPUs.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence

import itertools
import multiprocessing
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..resilience import (
    InjectedFault,
    RetryPolicy,
    checkpoint,
    mark_pool_worker,
    resilience_stats,
    retry_call,
)
from ..serving.deadline import DEFAULT_CHECK_INTERVAL, active_deadline
from ..skyline.dominance import k_dominated_any
from ..skyline.kdominant import k_dominant_candidates_block
from .result import KSJQResult
from .timing import PhaseClock
from .verify import sort_rows_for_early_exit

if TYPE_CHECKING:
    from .._typing import BoolVector, FloatMatrix, IntVector  # pragma: no cover - import cycle guard
    from .cascade import CascadeResult
    from .plan import CascadePlan, JoinPlan

__all__ = [
    "ShardPlan",
    "plan_shards",
    "shard_bounds",
    "available_cpus",
    "batch_workers",
    "run_parallel",
    "run_cascade_parallel",
    "AUTO_MIN_ROWS",
    "PROCESS_MIN_SHARD_ELEMENTS",
    "WORKER_SPAWN_COST",
]

#: Below this many candidate rows, ``parallelism="auto"`` stays serial:
#: worker spawn + shard pickling would outweigh the saved scan time.
AUTO_MIN_ROWS = 8192

#: Shards whose matrix payload (rows x joined attributes) reaches this
#: many elements use a process pool; smaller shards use threads (numpy
#: releases the GIL inside the block kernels, and threads avoid the
#: fork + pickle cost that small shards cannot repay).
PROCESS_MIN_SHARD_ELEMENTS = 262_144

#: Joined width assumed when the caller cannot supply one.
DEFAULT_WIDTH = 8

#: Abstract cost of spawning one worker, in the same dominance-comparison
#: units as :func:`repro.api.engine.choose_algorithm`'s estimates.
WORKER_SPAWN_COST = 2_000_000

#: Most workers ``parallelism="auto"`` will ever choose.
AUTO_MAX_WORKERS = 8

_batch_local = threading.local()


def available_cpus() -> int:
    """CPUs usable by this process (affinity-aware where supported)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@contextmanager
def batch_workers(count: int) -> Iterator[None]:
    """Mark the current thread as one of ``count`` concurrent batch lanes.

    Used by ``Engine.execute_many``: queries executed inside this
    context have their resolved per-query worker count capped to
    ``max(1, cpus // count)`` by :func:`plan_shards`, so a batch of
    parallel queries shares the machine instead of oversubscribing it.
    """
    previous = getattr(_batch_local, "count", 1)
    _batch_local.count = max(1, int(count))
    try:
        yield
    finally:
        _batch_local.count = previous


def _batch_lane_count() -> int:
    return getattr(_batch_local, "count", 1)


@dataclass(frozen=True)
class ShardPlan:
    """How one query's candidate generation is partitioned and executed.

    Attributes
    ----------
    workers:
        Worker (and shard) count; ``1`` means serial execution.
    n_rows:
        Candidate rows being sharded (the joined size / chain count).
    executor:
        ``"process"``, ``"thread"`` or ``"serial"``.
    reason:
        Human-readable justification of the decision (reported by
        ``Engine.explain``).
    partition:
        How the candidate rows are split across shards: ``"rows"``
        (contiguous slices, the default) or ``"cells"`` (whole joined
        cells of a :class:`repro.core.index.CellPartition`, LPT-balanced
        — the indexed path relabels its plan so ``explain`` reports the
        cell sharding).
    """

    workers: int
    n_rows: int
    executor: str
    reason: str
    partition: str = "rows"

    @property
    def n_shards(self) -> int:
        """Shard count (one shard per worker)."""
        return self.workers

    @property
    def is_parallel(self) -> bool:
        """Does this plan fan out at all?"""
        return self.workers > 1

    def describe(self) -> str:
        """One-line human-readable rendering."""
        if not self.is_parallel:
            if self.partition != "rows":
                return f"serial ({self.partition} partition) — {self.reason}"
            return f"serial — {self.reason}"
        shard_kind = "shards" if self.partition == "rows" else "cell buckets"
        return (
            f"{self.workers} {self.executor} workers over {self.n_shards} "
            f"{shard_kind} of ~{self.n_rows // max(1, self.n_shards)} rows — "
            f"{self.reason}"
        )


def shard_bounds(n_rows: int, n_shards: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` ranges splitting ``n_rows`` evenly.

    Returns at most ``n_shards`` non-empty ranges (fewer when there are
    fewer rows than shards), sizes differing by at most one row.
    """
    n_shards = max(1, min(n_shards, n_rows)) if n_rows else 1
    base, extra = divmod(n_rows, n_shards)
    bounds: list[tuple[int, int]] = []
    start = 0
    for i in range(n_shards):
        stop = start + base + (1 if i < extra else 0)
        if stop > start:
            bounds.append((start, stop))
        start = stop
    return bounds


def plan_shards(
    n_rows: int, parallelism: object = "auto", width: int = 0
) -> ShardPlan:
    """Decide serial-vs-sharded execution for ``n_rows`` candidate rows.

    ``parallelism="auto"`` is the cost-based path: stay serial below
    :data:`AUTO_MIN_ROWS` or on a single-CPU machine, otherwise use up
    to :data:`AUTO_MAX_WORKERS` workers, never more than the CPUs
    available to this query's batch lane (see :func:`batch_workers`).
    An explicit integer demands that many workers (still capped by the
    batch-lane budget so ``execute_many`` cannot oversubscribe).

    The executor kind follows the shard payload: process pool once a
    shard's matrix (rows x ``width`` joined attributes — the engine
    passes ``PlanStats.joined_width``; :data:`DEFAULT_WIDTH` when
    unknown) reaches :data:`PROCESS_MIN_SHARD_ELEMENTS`, thread pool
    below.
    """
    budget = max(1, available_cpus() // _batch_lane_count())
    if parallelism == "auto":
        if n_rows < AUTO_MIN_ROWS:
            return ShardPlan(
                1, n_rows, "serial",
                f"joined size {n_rows} below parallel threshold {AUTO_MIN_ROWS}",
            )
        workers = min(AUTO_MAX_WORKERS, budget)
        if workers <= 1:
            return ShardPlan(
                1, n_rows, "serial",
                "no spare CPUs for this query "
                f"({available_cpus()} available / {_batch_lane_count()} batch lanes)",
            )
        reason = f"auto: {workers} of {available_cpus()} CPUs"
    else:
        requested = int(parallelism)
        workers = min(requested, budget) if _batch_lane_count() > 1 else requested
        if workers <= 1:
            if requested > 1:
                return ShardPlan(
                    1, n_rows, "serial",
                    f"parallelism={requested} capped to CPU budget {budget} "
                    f"by {_batch_lane_count()} batch lanes",
                )
            return ShardPlan(1, n_rows, "serial", "parallelism=1 requested")
        reason = f"parallelism={requested} requested"
    workers = max(1, min(workers, n_rows)) if n_rows else 1
    if workers <= 1:
        return ShardPlan(1, n_rows, "serial", f"only {n_rows} candidate rows")
    shard_elements = (n_rows // workers) * max(1, width or DEFAULT_WIDTH)
    executor = "process" if shard_elements >= PROCESS_MIN_SHARD_ELEMENTS else "thread"
    return ShardPlan(workers, n_rows, executor, reason)


# ----------------------------------------------------------------------
# Worker functions (module-level so ProcessPoolExecutor can pickle them)
# ----------------------------------------------------------------------
#: Large read-only payloads (the sorted full matrix of the verification
#: pass) stashed by key so fork-based process workers inherit them as
#: copy-on-write pages — and thread workers read them directly — instead
#: of pickling one full copy per task. Keys are process-unique, so
#: concurrent queries (``execute_many`` lanes) never collide.
_SHARED_PAYLOADS: dict[int, FloatMatrix] = {}
_shared_keys = itertools.count()


def _shard_candidates(args: tuple[IntVector, int, int]) -> IntVector:
    """Phase 1, one shard: local candidate superset, as global indices."""
    shard_matrix, offset, k = args
    checkpoint("shard.candidates")
    return k_dominant_candidates_block(shard_matrix, k) + offset


def _subset_candidates(args: tuple[FloatMatrix, IntVector, int]) -> IntVector:
    """Phase 1, one cell bucket: local candidate superset of a
    non-contiguous row subset, mapped back to global indices."""
    bucket_matrix, rows, k = args
    checkpoint("shard.candidates")
    return rows[k_dominant_candidates_block(bucket_matrix, k)]


def _verify_chunk(args: tuple[int, IntVector, int]) -> BoolVector:
    """Phase 2, one candidate chunk: dominated flags vs the full data
    (looked up in :data:`_SHARED_PAYLOADS` — inherited via fork for
    process workers, shared memory for threads)."""
    payload_key, vectors, k = args
    checkpoint("shard.verify")
    return k_dominated_any(_SHARED_PAYLOADS[payload_key], vectors, k)


@contextmanager
def _shared_payload(matrix: FloatMatrix) -> Iterator[int]:
    """Register ``matrix`` under a fresh key for the duration of a pass."""
    key = next(_shared_keys)
    _SHARED_PAYLOADS[key] = matrix
    try:
        yield key
    finally:
        _SHARED_PAYLOADS.pop(key, None)


def _fork_context() -> multiprocessing.context.BaseContext | None:
    """The fork start method, or ``None`` where unavailable (Windows,
    macOS default spawn without fork support)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return None


#: Backoff schedule shared by every rung of the recovery ladder: up to
#: two retries, 5 ms doubling to a 100 ms ceiling, half-jittered.
SHARD_RETRY_POLICY = RetryPolicy(max_attempts=3, base_delay=0.005, max_delay=0.1)

#: Shard-task failures the recovery ladder absorbs: injected faults and
#: OS-level transients. Shard tasks are pure functions, so any *other*
#: exception is a bug in the kernels and must propagate unchanged.
_RECOVERABLE = (InjectedFault, OSError)


def _serial_tasks(
    fn: Callable[[tuple], np.ndarray], tasks: Sequence[tuple]
) -> list[np.ndarray]:
    """Run tasks inline, retrying transient failures in place.

    The ladder's last rung: a fault that outlasts the retry policy here
    propagates as its typed :class:`~repro.errors.ResilienceError`
    (or ``OSError``) — never a silently dropped shard.
    """
    return [
        retry_call(lambda t=task: fn(t), policy=SHARD_RETRY_POLICY)
        for task in tasks
    ]


def _map_on_processes(
    fn: Callable[[tuple], np.ndarray],
    tasks: Sequence[tuple],
    workers: int,
    context: multiprocessing.context.BaseContext | None,
) -> list[np.ndarray] | None:
    """Run tasks on a process pool, recovering from worker crashes.

    A dead worker (SIGKILL, OOM, injected crash) surfaces as
    ``BrokenProcessPool`` on the futures of every task that was in
    flight; a transient task failure comes back as the future's
    exception. Either way only the *failed* tasks are re-executed under
    the bounded :data:`SHARD_RETRY_POLICY` — and only a pool that
    actually *broke* is torn down and rebuilt (counted as
    ``pool_rebuilds``); task-level transients retry on the live pool
    without paying pool startup again. Returns results in task order,
    or ``None`` when the policy is exhausted and the caller should
    degrade to threads. Pools are only ever created on the main
    thread: forking while sibling batch-lane threads run
    (``execute_many``) risks inheriting locks held mid-operation.
    """
    on_main_thread = threading.current_thread() is threading.main_thread()
    if on_main_thread:
        results: list[np.ndarray | None] = [None] * len(tasks)
        pending = list(range(len(tasks)))
        pool: ProcessPoolExecutor | None = None
        rebuilding = False
        try:
            for attempt in range(SHARD_RETRY_POLICY.max_attempts):
                if attempt:
                    resilience_stats().record("shard_retries", len(pending))
                    time.sleep(SHARD_RETRY_POLICY.delay(attempt - 1))
                broken = False
                try:
                    if pool is None:
                        pool = ProcessPoolExecutor(
                            max_workers=min(workers, len(pending)),
                            mp_context=context,
                            initializer=mark_pool_worker,
                        )
                        if rebuilding:
                            resilience_stats().record("pool_rebuilds")
                            rebuilding = False
                    futures = {i: pool.submit(fn, tasks[i]) for i in pending}
                    failed = []
                    for i, future in futures.items():
                        try:
                            results[i] = future.result()
                        except BrokenProcessPool:
                            failed.append(i)
                            broken = True
                        except _RECOVERABLE:
                            failed.append(i)
                    pending = failed
                except OSError:
                    # The pool could not start; everything still
                    # pending gets retried on the next attempt.
                    pass
                except BrokenProcessPool:
                    # The pool broke while submitting; the partially
                    # submitted futures are lost, but their indices
                    # are still in ``pending``.
                    broken = True
                if broken and pool is not None:
                    pool.shutdown(wait=True)
                    pool = None
                    rebuilding = True
                if not pending:
                    return [r for r in results if r is not None]
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
    return None


def _map_on_threads(
    fn: Callable[[tuple], np.ndarray],
    tasks: Sequence[tuple],
    workers: int,
) -> list[np.ndarray] | None:
    """Run tasks on a thread pool with per-task transient retries.

    Returns results in task order, or ``None`` when a task keeps
    failing past the policy and the caller should fall back to serial
    execution (whose final failure propagates typed).
    """
    results: list[np.ndarray | None] = [None] * len(tasks)
    pending = list(range(len(tasks)))
    with ThreadPoolExecutor(max_workers=workers) as pool:
        for attempt in range(SHARD_RETRY_POLICY.max_attempts):
            if attempt:
                resilience_stats().record("shard_retries", len(pending))
                time.sleep(SHARD_RETRY_POLICY.delay(attempt - 1))
            futures = {i: pool.submit(fn, tasks[i]) for i in pending}
            failed = []
            for i, future in futures.items():
                try:
                    results[i] = future.result()
                except _RECOVERABLE:
                    failed.append(i)
            pending = failed
            if not pending:
                return [r for r in results if r is not None]
    return None


def _map_tasks(
    fn: Callable[[tuple], np.ndarray],
    tasks: Sequence[tuple],
    shards: ShardPlan,
    needs_shared_state: bool = False,
) -> list[np.ndarray]:
    """Run ``fn`` over ``tasks`` on the shard plan's executor.

    Results come back in task order, and non-transient exceptions
    raised by ``fn`` propagate. Transient failures walk the **recovery
    ladder** (see ``docs/resilience.md``): failed tasks are retried in
    place with exponential backoff and jitter, a broken process pool is
    rebuilt and only the failed shard buckets re-executed, and when a
    rung's retry budget is exhausted execution degrades
    process → thread → serial (counted in
    :func:`repro.resilience.resilience_stats`). Correctness never rests
    on the ladder: shard tasks are pure, and the mandatory cross-shard
    verification re-checks every merged candidate against the full
    matrix, so re-executed shards cannot change the answer.

    ``needs_shared_state`` marks functions reading
    :data:`_SHARED_PAYLOADS`; they require fork-inherited memory, so on
    platforms without fork they run on threads. Processes are also only
    used from the main thread (see :func:`_map_on_processes`).
    """
    if not shards.is_parallel or len(tasks) <= 1:
        return _serial_tasks(fn, tasks)
    workers = min(shards.workers, len(tasks))
    main = threading.current_thread() is threading.main_thread()
    if shards.executor == "process" and main:
        context = _fork_context() if needs_shared_state else None
        if not needs_shared_state or context is not None:
            results = _map_on_processes(fn, tasks, workers, context)
            if results is not None:
                return results
            resilience_stats().record("degradations")  # process → thread
    results = _map_on_threads(fn, tasks, workers)
    if results is not None:
        return results
    resilience_stats().record("degradations")  # thread → serial
    return _serial_tasks(fn, tasks)


def _sharded_skyline(
    matrix: FloatMatrix,
    k: int,
    shards: ShardPlan,
    clock: PhaseClock,
    partial_of: Callable[[Sequence[int]], tuple[tuple[int, ...], ...]] | None = None,
    row_subsets: Sequence[IntVector] | None = None,
    sorted_matrix: FloatMatrix | None = None,
    candidate_memo: dict[int, IntVector] | None = None,
    memo_lock: threading.RLock | None = None,
) -> tuple[IntVector, int]:
    """The two-phase partition-and-merge skyline over ``matrix``.

    Phase 1 ("grouping" clock phase): per-shard local candidate
    generation. Phase 2 ("remaining"): cross-shard verification of the
    merged candidates against all rows. Returns ``(sorted surviving row
    indices, number of candidates verified)``.

    ``row_subsets`` replaces the default contiguous sharding with
    explicit candidate row lists — the indexed path passes LPT-balanced
    cell buckets whose union is the *unpruned* rows only. That is sound
    because phase 2 is unchanged: candidates are always verified against
    **all** rows of ``matrix`` (pruned tuples are provably non-winning
    yet still k-dominate others), so the answer stays byte-identical to
    the unpruned paths. ``sorted_matrix`` optionally supplies the
    pre-sorted verification matrix (a plan-level memo) and
    ``candidate_memo``/``memo_lock`` a per-``k`` candidate-superset memo
    filled under the lock: a repeated query skips phase 1 entirely and
    re-verifies the memoized superset — exactness never depends on the
    memo since verification is exact for *any* superset of the answer.

    When a serving deadline is active, checks run between the phases
    and between verification *waves*: the candidate chunks shrink to
    :data:`~repro.serving.deadline.DEFAULT_CHECK_INTERVAL` rows and are
    dispatched ``n_shards`` at a time, so a deadline trips within one
    wave's work. ``partial_of`` maps the row indices verified so far to
    the pairs/chains carried by the raised ``DeadlineExceeded``.
    """
    deadline = active_deadline()
    survivors: list[int] = []

    def partial() -> tuple[tuple[int, ...], ...]:
        return partial_of(survivors) if partial_of is not None else ()

    n = matrix.shape[0]
    with clock.phase("grouping"):
        if deadline is not None:
            deadline.check(partial)
        candidates = (
            candidate_memo.get(k) if candidate_memo is not None else None
        )
        if candidates is None:
            if row_subsets is not None:
                locals_ = _map_tasks(
                    _subset_candidates,
                    [(matrix[rows], rows, k) for rows in row_subsets if rows.size],
                    shards,
                )
            else:
                bounds = shard_bounds(n, shards.n_shards)
                locals_ = _map_tasks(
                    _shard_candidates,
                    [(matrix[start:stop], start, k) for start, stop in bounds],
                    shards,
                )
            candidates = (
                np.sort(np.concatenate(locals_))
                if locals_
                else np.empty(0, dtype=np.intp)
            )
            if candidate_memo is not None:
                if memo_lock is not None:
                    with memo_lock:
                        candidate_memo[k] = candidates
                else:
                    candidate_memo[k] = candidates
    with clock.phase("remaining"):
        if candidates.size == 0:
            return candidates, 0
        if deadline is not None:
            deadline.check(partial)
        # Cross-shard merge: every candidate re-checked against ALL
        # rows (k-dominance is non-transitive — locally eliminated rows
        # still eliminate), with strong rows stacked first for early
        # exit. The sorted matrix travels to workers as fork-inherited
        # shared state, not one pickled copy per chunk.
        if sorted_matrix is None:
            sorted_matrix = sort_rows_for_early_exit(matrix)
        if deadline is None:
            chunk_bounds = shard_bounds(candidates.size, shards.n_shards)
            with _shared_payload(sorted_matrix) as payload_key:
                dominated = np.concatenate(
                    _map_tasks(
                        _verify_chunk,
                        [
                            (payload_key, matrix[candidates[start:stop]], k)
                            for start, stop in chunk_bounds
                        ],
                        shards,
                        needs_shared_state=True,
                    )
                )
            return candidates[~dominated], int(candidates.size)
        step = DEFAULT_CHECK_INTERVAL
        chunk_bounds = [
            (start, min(start + step, int(candidates.size)))
            for start in range(0, int(candidates.size), step)
        ]
        with _shared_payload(sorted_matrix) as payload_key:
            for wave_start in range(0, len(chunk_bounds), shards.n_shards):
                deadline.check(partial)
                wave = chunk_bounds[wave_start : wave_start + shards.n_shards]
                flags = _map_tasks(
                    _verify_chunk,
                    [(payload_key, matrix[candidates[start:stop]], k) for start, stop in wave],
                    shards,
                    needs_shared_state=True,
                )
                for (start, stop), dominated in zip(wave, flags):
                    survivors.extend(int(c) for c in candidates[start:stop][~dominated])
        deadline.check(partial)
        return np.asarray(survivors, dtype=np.intp), int(candidates.size)


# ----------------------------------------------------------------------
# Plan-based runners (consumed by repro.api.Engine)
# ----------------------------------------------------------------------
def run_parallel(
    plan: "JoinPlan", k: int, shards: ShardPlan | None = None
) -> KSJQResult:
    """Sharded two-way KSJQ over a prepared join plan.

    Exact for every join kind and any aggregate (like the naïve
    algorithm, it works on the materialized joined view and never
    relies on monotonicity), and shard-count independent: the result is
    byte-identical across ``parallelism`` settings.

    Parameters
    ----------
    plan:
        The prepared two-way join.
    k:
        Dominance threshold (validated against the schemas).
    shards:
        Execution decision from :func:`plan_shards`; defaults to the
        auto decision for the plan's joined size.
    """
    params = plan.params(k)
    clock = PhaseClock()
    with clock.phase("join"):
        view = plan.view()
        matrix = view.oriented()
    if shards is None:
        shards = plan_shards(matrix.shape[0], "auto", matrix.shape[1])
    keep, checked = _sharded_skyline(
        matrix,
        k,
        shards,
        clock,
        partial_of=lambda survivors: tuple(
            (int(view.pairs[i, 0]), int(view.pairs[i, 1])) for i in survivors
        ),
    )
    return KSJQResult(
        algorithm="parallel",
        mode="exact",
        params=params,
        pairs=view.pairs[keep],
        timings=clock.freeze(),
        checked=checked,
    )


def run_cascade_parallel(
    plan: "CascadePlan", k: int, shards: ShardPlan | None = None
) -> "CascadeResult":
    """Sharded m-way cascade KSJQ over a prepared cascade plan.

    Chains are enumerated first-relation-major, so sharding the chain
    matrix into contiguous ranges partitions the cascade by its *first
    hop*: each worker owns one slice of the first relation's chains.
    Exact for any aggregate; byte-identical across shard counts.
    """
    from .cascade import CascadeResult

    plan.params(k)
    clock = PhaseClock()
    with clock.phase("join"):
        all_chains = plan.chains()
        matrix = plan.oriented()
    if shards is None:
        shards = plan_shards(matrix.shape[0], "auto", matrix.shape[1])
    keep, _ = _sharded_skyline(
        matrix,
        k,
        shards,
        clock,
        partial_of=lambda survivors: tuple(
            tuple(int(x) for x in all_chains[i]) for i in survivors
        ),
    )
    return CascadeResult(
        k=k,
        chains=all_chains[keep],
        total_chains=int(all_chains.shape[0]),
        pruned_rows=0,
        algorithm="parallel",
        timings=clock.freeze(),
    )
