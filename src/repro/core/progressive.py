"""Progressive KSJQ result generation.

The paper criticizes the naïve algorithm because "the user has to wait
a fairly large time (at least the complete joining time) before even
the first skyline result is presented to her. In online scenarios, the
progressive result generation is quite an attractive and useful
feature" (Sec. 6.1). The grouping algorithm is naturally progressive:

1. SS⋈SS tuples are k-dominant skylines by Theorem 1/3 — they can be
   emitted as soon as the two categorizations finish, before any
   verification work;
2. "likely" tuples (SS⋈SN / SN⋈SS) need only their (small) target-set
   joins — they stream out next;
3. "may be" tuples (SN⋈SN) are verified against the full join last.

:func:`ksjq_progressive` implements exactly this ordering as a Python
generator; consuming only a prefix performs only the work that prefix
needed (the full join, in particular, is not materialized until the
first "may be" tuple must be decided).

Only faithful mode is offered here: progressiveness relies on emitting
"yes" tuples unverified, which is the paper's (sound for ``a = 0``)
Theorem 1/3. With aggregates the same caveats as
:func:`~repro.core.grouping.run_grouping` apply.
"""

from __future__ import annotations

from collections.abc import Iterator


from typing import TYPE_CHECKING

import numpy as np

from ..serving.deadline import active_deadline
from ..skyline.dominance import is_k_dominated
from .grouping import _vector_view, collect_cells, warn_if_unsound
from .plan import JoinPlan
from .targets import target_rows_paper
from .verify import sort_rows_for_early_exit

if TYPE_CHECKING:
    from .._typing import IntVector

__all__ = ["ksjq_progressive"]


def ksjq_progressive(plan: JoinPlan, k: int) -> Iterator[tuple[int, int]]:
    """Yield k-dominant skyline pairs progressively (grouping order).

    Yields ``(left_row, right_row)`` pairs: first the guaranteed "yes"
    cell, then verified "likely" tuples, then verified "may be" tuples.
    Within each stage, pairs stream in enumeration order.
    """
    params = plan.params(k)
    plan.require_strict_aggregate("progressive grouping algorithm")
    warn_if_unsound("faithful", params, "progressive grouping algorithm")

    cat1 = plan.categorize_left(params.k1_prime)
    cat2 = plan.categorize_right(params.k2_prime)
    cells = collect_cells(plan, cat1, cat2)
    vec_view = _vector_view(plan)

    # Serving deadline (if any): checked before each pair is decided,
    # with the pairs already yielded as the partial answer — every one
    # of them is in this spec's full answer, so partial ⊆ full holds.
    deadline = active_deadline()
    emitted: list[tuple[int, int]] = []

    def partial() -> tuple[tuple[int, ...], ...]:
        return tuple(emitted)

    # Stage 1: Theorem 1/3 "yes" tuples — no joins, no checks.
    for pair in cells["SS*SS"]:
        if deadline is not None:
            deadline.check(partial)
            emitted.append((int(pair[0]), int(pair[1])))
        yield int(pair[0]), int(pair[1])

    # Stage 2: "likely" cells, verified against per-anchor target joins.
    for cell_name, ss_side in (("SS*SN", "left"), ("SN*SS", "right")):
        cell_pairs = cells[cell_name]
        if cell_pairs.shape[0] == 0:
            continue
        vectors = vec_view.oriented_for_pairs(cell_pairs)
        target_cache: dict[int, IntVector] = {}
        anchor_col = 0 if ss_side == "left" else 1
        for pos in range(cell_pairs.shape[0]):
            if deadline is not None:
                deadline.check(partial)
            anchor = int(cell_pairs[pos, anchor_col])
            if anchor not in target_cache:
                if ss_side == "left":
                    targets = target_rows_paper(plan.left, anchor, params.k1_prime)
                    candidates = plan.compatible_pairs(
                        targets, np.arange(len(plan.right))
                    )
                else:
                    targets = target_rows_paper(plan.right, anchor, params.k2_prime)
                    candidates = plan.compatible_pairs(
                        np.arange(len(plan.left)), targets
                    )
                matrix = vec_view.oriented_for_pairs(candidates)
                target_cache[anchor] = sort_rows_for_early_exit(matrix)
            if not is_k_dominated(target_cache[anchor], vectors[pos], k):
                if deadline is not None:
                    emitted.append((int(cell_pairs[pos, 0]), int(cell_pairs[pos, 1])))
                yield int(cell_pairs[pos, 0]), int(cell_pairs[pos, 1])

    # Stage 3: "may be" cell against the full join — materialized only
    # now, and only if the cell is non-empty.
    maybe = cells["SN*SN"]
    if maybe.shape[0]:
        full_matrix = sort_rows_for_early_exit(plan.view().oriented())
        vectors = vec_view.oriented_for_pairs(maybe)
        for pos in range(maybe.shape[0]):
            if deadline is not None:
                deadline.check(partial)
            if not is_k_dominated(full_matrix, vectors[pos], k):
                if deadline is not None:
                    emitted.append((int(maybe[pos, 0]), int(maybe[pos, 1])))
                yield int(maybe[pos, 0]), int(maybe[pos, 1])
