"""Algorithm 1: the naïve KSJQ algorithm.

Materializes the complete join, then runs a standard k-dominant skyline
computation over it (paper Sec. 6.1). Simple, always correct (it is the
ground truth the optimized algorithms are tested against), but it pays
the full join cost and the full skyline cost, and produces no results
until the join finishes.

Invariant relied on by the differential fuzz suite
(``tests/property/test_property_index.py``): this runner never touches
the dominance-index layer (:mod:`repro.core.index`) — no
``DominanceIndex`` build, no cell pruning, no memoized candidate
supersets — so the indexed path's byte-identity is checked against an
independently computed answer, not against itself. Keep it that way.

When a serving deadline is active (:func:`~repro.serving.deadline
.active_deadline`), the skyline pass switches to the chunked
:func:`~repro.core.verify.checkpointed_skyline` — the same answer, but
cancellable between candidate chunks with the verified survivors as the
partial answer.
"""

from __future__ import annotations

from ..serving.deadline import active_deadline
from ..skyline.kdominant import k_dominant_skyline
from .plan import JoinPlan
from .result import KSJQResult
from .timing import PhaseClock
from .verify import checkpointed_skyline

__all__ = ["run_naive"]


def run_naive(plan: JoinPlan, k: int, skyline_method: str = "tsa") -> KSJQResult:
    """Run Algorithm 1 on a prepared join plan.

    Parameters
    ----------
    plan:
        The join to query (any kind; any monotone aggregate).
    k:
        Number of joined skyline attributes a dominator must cover.
    skyline_method:
        Inner k-dominant skyline engine: ``"tsa"`` (two-scan, default)
        or ``"naive"`` (quadratic reference).
    """
    params = plan.params(k)
    clock = PhaseClock()
    with clock.phase("join"):
        view = plan.view()
        matrix = view.oriented()
    with clock.phase("remaining"):
        deadline = active_deadline()
        if deadline is not None:
            skyline_idx = checkpointed_skyline(
                matrix,
                k,
                deadline,
                lambda survivors: tuple(
                    (int(view.pairs[i, 0]), int(view.pairs[i, 1])) for i in survivors
                ),
            )
        else:
            skyline_idx = k_dominant_skyline(matrix, k, method=skyline_method)
        pairs = view.pairs[skyline_idx]
    return KSJQResult(
        algorithm="naive",
        mode="exact",
        params=params,
        pairs=pairs,
        timings=clock.freeze(),
    )
