"""Algorithm 1: the naïve KSJQ algorithm.

Materializes the complete join, then runs a standard k-dominant skyline
computation over it (paper Sec. 6.1). Simple, always correct (it is the
ground truth the optimized algorithms are tested against), but it pays
the full join cost and the full skyline cost, and produces no results
until the join finishes.
"""

from __future__ import annotations

from ..skyline.kdominant import k_dominant_skyline
from .plan import JoinPlan
from .result import KSJQResult
from .timing import PhaseClock

__all__ = ["run_naive"]


def run_naive(plan: JoinPlan, k: int, skyline_method: str = "tsa") -> KSJQResult:
    """Run Algorithm 1 on a prepared join plan.

    Parameters
    ----------
    plan:
        The join to query (any kind; any monotone aggregate).
    k:
        Number of joined skyline attributes a dominator must cover.
    skyline_method:
        Inner k-dominant skyline engine: ``"tsa"`` (two-scan, default)
        or ``"naive"`` (quadratic reference).
    """
    params = plan.params(k)
    clock = PhaseClock()
    with clock.phase("join"):
        view = plan.view()
        matrix = view.oriented()
    with clock.phase("remaining"):
        skyline_idx = k_dominant_skyline(matrix, k, method=skyline_method)
        pairs = view.pairs[skyline_idx]
    return KSJQResult(
        algorithm="naive",
        mode="exact",
        params=params,
        pairs=pairs,
        timings=clock.freeze(),
    )
