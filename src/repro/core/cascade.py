"""Multi-relation KSJQ via cascaded joins (paper Sec. 2.3).

"The case for more than two base relations can be handled by cascading
the joins." — e.g. a two-stop flight joins three leg relations. This
module implements the m-way generalization:

* chains ``(i_1, ..., i_m)`` are join-compatible compositions: hop
  ``j`` connects ``relations[j]`` to ``relations[j+1]`` on an equality
  of one column each (:class:`Hop`), defaulting to the relations'
  composite join keys — e.g. ``Hop("dest", "source")`` expresses
  ``leg_j.dest = leg_{j+1}.source``;
* the joined skyline attributes are all relations' local attributes
  plus each aggregate attribute folded across all m relations;
* a chain k-dominates another exactly as in the two-way case.

Algorithms:

* ``naive`` — materialize every chain, run the k-dominant skyline
  (ground truth);
* ``pruned`` — the m-way analogue of the paper's Theorem 4: a tuple of
  relation i dominated under threshold ``k'_i = k − Σ_{j≠i} l_j``
  (counted over its base attributes) *by a tuple sharing both its hop
  values* can never appear in a skyline chain, because substituting the
  dominator yields a valid chain that k-dominates. Surviving chains are
  verified against the full chain set, keeping the algorithm exact for
  strictly monotone aggregates.

The valid k range generalizes to ``max_i d_i < k <= Σ_i l_i + a``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import JoinError, ParameterError
from ..relational.aggregates import AggregateFunction, get_aggregate
from ..relational.relation import Relation
from ..skyline.dominance import is_k_dominated
from ..skyline.kdominant import k_dominant_skyline
from .result import QueryResult
from .timing import PhaseClock, TimingBreakdown
from .verify import sort_rows_for_early_exit

__all__ = ["Hop", "CascadeResult", "cascade_chains", "cascade_oriented", "cascade_ksjq"]


@dataclass(frozen=True)
class Hop:
    """One equality hop of a cascade: ``left.column == right.column``.

    ``None`` selects the relation's composite join key (all join-role
    attributes), matching the two-way default.
    """

    left_column: Optional[str] = None
    right_column: Optional[str] = None


def _hop_value(relation: Relation, column: Optional[str], row: int):
    if column is None:
        return relation.join_key(row)
    return relation.column(column)[row]


def _hop_values(relation: Relation, column: Optional[str]) -> List:
    if column is None:
        return relation.join_keys()
    return list(relation.column(column))


@dataclass(frozen=True)
class CascadeResult(QueryResult):
    """Answer of an m-way cascade KSJQ."""

    k: int
    chains: np.ndarray  # (s x m) array of skyline chains
    total_chains: int
    pruned_rows: int
    algorithm: str
    timings: TimingBreakdown = field(default_factory=TimingBreakdown)
    spec: Optional[Any] = field(default=None, compare=False, repr=False)
    source: Optional[Any] = field(default=None, compare=False, repr=False)

    @property
    def count(self) -> int:
        return int(self.chains.shape[0])

    def chain_set(self) -> frozenset:
        return frozenset(tuple(int(x) for x in row) for row in self.chains)

    def to_records(self) -> List[Dict[str, object]]:
        """Skyline chains as dicts: per-relation columns prefixed ``r{i}.``.

        Prefixes are one-based (``r1.``, ``r2.``, ...), matching the
        two-way :meth:`KSJQResult.to_records` layout. Needs the source
        relations (attached when the cascade runs through the public
        entry point).
        """
        relations: Sequence[Relation] = self._require_source()
        records: List[Dict[str, object]] = []
        for chain in self.chains:
            rec: Dict[str, object] = {}
            for i, (rel, row) in enumerate(zip(relations, chain), start=1):
                rec[f"r{i}._row"] = int(row)
                for name, value in rel.record(int(row)).items():
                    rec[f"r{i}.{name}"] = value
            records.append(rec)
        return records


def _normalize_hops(relations: Sequence[Relation], hops) -> List[Hop]:
    m = len(relations)
    if hops is None:
        hops = [Hop()] * (m - 1)
    hops = list(hops)
    if len(hops) != m - 1:
        raise JoinError(f"need {m - 1} hops for {m} relations, got {len(hops)}")
    return hops


def _validate(relations: Sequence[Relation], k: int) -> int:
    if len(relations) < 2:
        raise JoinError("a cascade needs at least two relations")
    first = relations[0].schema
    for rel in relations[1:]:
        first.validate_compatible_aggregates(rel.schema)
    a = first.a
    joined_d = sum(rel.schema.l for rel in relations) + a
    k_min = max(rel.schema.d for rel in relations) + 1
    if not k_min <= k <= joined_d:
        raise ParameterError(f"k={k} outside valid cascade range [{k_min}, {joined_d}]")
    return a


def cascade_chains(
    relations: Sequence[Relation],
    hops: Optional[Sequence[Hop]] = None,
    keep: Optional[Sequence[np.ndarray]] = None,
) -> np.ndarray:
    """Enumerate join-compatible chains ``(i_1, ..., i_m)`` as an (s x m) array.

    ``keep`` optionally restricts each relation to a row subset (used by
    the pruned algorithm).
    """
    hops = _normalize_hops(relations, hops)
    masks = (
        [np.asarray(rows, dtype=np.intp) for rows in keep]
        if keep is not None
        else [np.arange(len(rel)) for rel in relations]
    )
    chains = masks[0].reshape(-1, 1)
    for idx, hop in enumerate(hops):
        left_rel, right_rel = relations[idx], relations[idx + 1]
        left_values = _hop_values(left_rel, hop.left_column)
        right_groups: Dict[object, List[int]] = {}
        right_values = _hop_values(right_rel, hop.right_column)
        for row in masks[idx + 1]:
            right_groups.setdefault(right_values[int(row)], []).append(int(row))
        out: List[np.ndarray] = []
        for chain in chains:
            partners = right_groups.get(left_values[int(chain[-1])], [])
            for partner in partners:
                out.append(np.append(chain, partner))
        chains = (
            np.asarray(out, dtype=np.intp)
            if out
            else np.empty((0, idx + 2), dtype=np.intp)
        )
    return chains


def cascade_oriented(
    relations: Sequence[Relation],
    chains: np.ndarray,
    aggregate: Optional[AggregateFunction],
) -> np.ndarray:
    """Oriented joined matrix: locals per relation + folded aggregates."""
    if chains.shape[0] == 0:
        width = sum(rel.schema.l for rel in relations) + relations[0].schema.a
        return np.empty((0, width), dtype=np.float64)
    blocks = [rel.oriented_local()[chains[:, i]] for i, rel in enumerate(relations)]
    a = relations[0].schema.a
    if a:
        agg_names = list(relations[0].schema.aggregate_names)
        combined = relations[0].matrix[chains[:, 0]][
            :, relations[0].aggregate_column_indices()
        ]
        for i in range(1, len(relations)):
            rel = relations[i]
            combined = aggregate(
                combined, rel.matrix[chains[:, i]][:, rel.aggregate_column_indices()]
            )
        signs = np.asarray(
            [relations[0].schema[name].preference.sign for name in agg_names]
        )
        blocks.append(combined * signs)
    return np.concatenate(blocks, axis=1)


def cascade_ksjq(
    relations: Sequence[Relation],
    k: int,
    hops: Optional[Sequence[Hop]] = None,
    aggregate=None,
    algorithm: str = "pruned",
) -> CascadeResult:
    """m-way k-dominant skyline join over cascaded equality joins."""
    a = _validate(relations, k)
    hops = _normalize_hops(relations, hops)
    if a and aggregate is None:
        raise JoinError("schemas declare aggregate attributes; pass aggregate=...")
    agg = get_aggregate(aggregate) if aggregate is not None else None
    if algorithm not in ("naive", "pruned"):
        raise ParameterError(f"unknown cascade algorithm {algorithm!r}")
    if algorithm == "pruned" and agg is not None and not agg.strictly_monotone:
        raise ParameterError(
            "pruned cascade requires a strictly monotone aggregate; use naive"
        )

    clock = PhaseClock()
    with clock.phase("join"):
        all_chains = cascade_chains(relations, hops)
        matrix = cascade_oriented(relations, all_chains, agg)

    if algorithm == "naive":
        with clock.phase("remaining"):
            skyline_idx = k_dominant_skyline(matrix, k)
        return CascadeResult(
            k=k,
            chains=all_chains[skyline_idx],
            total_chains=int(all_chains.shape[0]),
            pruned_rows=0,
            algorithm="naive",
            timings=clock.freeze(),
            source=tuple(relations),
        )

    with clock.phase("grouping"):
        keep = _prune_rows(relations, hops, k)
        pruned_rows = sum(len(rel) - len(rows) for rel, rows in zip(relations, keep))
    with clock.phase("join"):
        candidates = cascade_chains(relations, hops, keep=keep)
        cand_matrix = cascade_oriented(relations, candidates, agg)
    with clock.phase("remaining"):
        full_sorted = sort_rows_for_early_exit(matrix)
        keep_idx = [
            pos
            for pos in range(candidates.shape[0])
            if not is_k_dominated(full_sorted, cand_matrix[pos], k)
        ]
    return CascadeResult(
        k=k,
        chains=candidates[keep_idx],
        total_chains=int(all_chains.shape[0]),
        pruned_rows=pruned_rows,
        algorithm="pruned",
        timings=clock.freeze(),
        source=tuple(relations),
    )


def _prune_rows(
    relations: Sequence[Relation], hops: Sequence[Hop], k: int
) -> List[np.ndarray]:
    """Per-relation NN pruning (m-way Theorem 4).

    A row of relation i may be discarded when some other row shares
    *both* its hop values (so it can substitute into every chain) and
    k'_i-dominates it, with ``k'_i = k − Σ_{j≠i} l_j`` counted over all
    of relation i's base attributes. Substituting the dominator keeps
    the chain valid, matches all other components exactly, and wins at
    least ``k'_i − a`` locals plus the dominated aggregate inputs —
    at least k joined attributes in total (strictness via the strictly
    monotone aggregate).
    """
    total_locals = sum(rel.schema.l for rel in relations)
    keep: List[np.ndarray] = []
    for i, rel in enumerate(relations):
        k_prime = k - (total_locals - rel.schema.l)
        if k_prime < 1:
            keep.append(np.arange(len(rel)))
            continue
        # Group rows by the hop values that constrain substitution.
        incoming = _hop_values(rel, hops[i - 1].right_column) if i > 0 else None
        outgoing = _hop_values(rel, hops[i].left_column) if i < len(relations) - 1 else None
        groups: Dict[tuple, List[int]] = {}
        for row in range(len(rel)):
            key = (
                incoming[row] if incoming is not None else None,
                outgoing[row] if outgoing is not None else None,
            )
            groups.setdefault(key, []).append(row)
        oriented = rel.oriented()
        survivors = []
        for rows in groups.values():
            sub = oriented[rows]
            for row in rows:
                if not is_k_dominated(sub, oriented[row], k_prime):
                    survivors.append(row)
        keep.append(np.asarray(sorted(survivors), dtype=np.intp))
    return keep
