"""Multi-relation KSJQ via cascaded joins (paper Sec. 2.3).

"The case for more than two base relations can be handled by cascading
the joins." — e.g. a two-stop flight joins three leg relations. This
module implements the m-way generalization over a *join graph*: an
ordered chain of relations where hop ``j`` connects ``relations[j]``
to ``relations[j+1]`` under its own join condition
(:class:`~repro.relational.join.HopSpec`):

* equality of the composite join keys (the two-way default), or of one
  named column per side — ``Hop("dest", "source")`` expresses
  ``leg_j.dest = leg_{j+1}.source``;
* a theta conjunction (``leg_j.arrival < leg_{j+1}.departure``);
* a cartesian hop (every pair joins).

The joined skyline attributes are all relations' local attributes plus
each aggregate attribute folded across all m relations; a chain
k-dominates another exactly as in the two-way case.

Algorithms:

* ``naive`` — materialize every chain, run the k-dominant skyline
  (ground truth);
* ``pruned`` — the m-way analogue of the paper's Theorem 4: a tuple of
  relation i dominated under threshold ``k'_i = k − Σ_{j≠i} l_j``
  (counted over its base attributes) *by a tuple sharing both its hop
  values* can never appear in a skyline chain, because substituting the
  dominator yields a valid chain that k-dominates. (For theta hops,
  "sharing the hop values" means sharing the exact theta-attribute
  values, which guarantees an identical partner set.) Surviving chains
  are verified against the full chain set, keeping the algorithm exact
  for strictly monotone aggregates.

The valid k range generalizes to ``max_i d_i < k <= Σ_i l_i + a``
(:class:`~repro.core.params.CascadeParams`).

:func:`cascade_ksjq` is a fail-fast convenience wrapper over the shared
default :class:`repro.api.Engine` — it validates every parameter before
any join structure is built, and repeated calls over equal-content
relations reuse the engine's cached
:class:`~repro.core.plan.CascadePlan`.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from ..errors import JoinError, ParameterError
from ..relational.aggregates import AggregateFunction
from ..relational.join import HopSpec, theta_conjunction_mask
from ..relational.relation import Relation
from ..serving.deadline import DEFAULT_CHECK_INTERVAL, active_deadline
from ..skyline.dominance import is_k_dominated
from ..skyline.kdominant import k_dominant_skyline
from .result import QueryResult
from .timing import PhaseClock, TimingBreakdown
from .verify import checkpointed_skyline

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from collections.abc import Callable

    from .._typing import AggregateLike, FloatMatrix, FloatVector, HopsLike, IntMatrix, IntVector
    from ..api.engine import Engine
    from .plan import CascadePlan

__all__ = [
    "CASCADE_ALGORITHMS",
    "Hop",
    "CascadeResult",
    "cascade_chains",
    "cascade_oriented",
    "cascade_ksjq",
    "cascade_progressive",
    "hop_side_values",
    "normalize_hops",
    "run_cascade_naive",
    "run_cascade_pruned",
]

CASCADE_ALGORITHMS = ("auto", "naive", "pruned", "parallel", "indexed")


@dataclass(frozen=True)
class Hop:
    """One equality hop of a cascade: ``left.column == right.column``.

    ``None`` selects the relation's composite join key (all join-role
    attributes), matching the two-way default. Legacy spelling of
    :meth:`repro.relational.HopSpec.on_columns`; kept as the compact
    public shorthand.
    """

    left_column: str | None = None
    right_column: str | None = None


def normalize_hops(m: int, hops: HopsLike) -> tuple[HopSpec, ...]:
    """Coerce a hop sequence to ``m - 1`` :class:`HopSpec` objects.

    ``None`` selects composite-key equality for every hop. Individual
    entries may be :class:`HopSpec`, legacy :class:`Hop`, ``None``, a
    :class:`~repro.relational.join.ThetaCondition`, or a conjunction
    sequence of conditions.
    """
    if hops is None:
        hops = [HopSpec()] * (m - 1)
    specs = tuple(HopSpec.coerce(h) for h in hops)
    if len(specs) != m - 1:
        raise JoinError(f"need {m - 1} hops for {m} relations, got {len(specs)}")
    return specs


def hop_side_values(
    relation: Relation, hop: HopSpec, side: str
) -> Sequence[object] | None:
    """Connector values of one relation for one side of a hop.

    Returns a per-row list of hashable values (rows sharing a value are
    interchangeable on this side of the hop), or ``None`` for a
    cartesian hop where every row is compatible with every partner.
    """
    if hop.kind == "cartesian":
        return None
    if hop.kind == "theta":
        attrs = [c.left_attr if side == "left" else c.right_attr for c in hop.theta]
        cols = [relation.column(a) for a in attrs]
        return [tuple(col[i] for col in cols) for i in range(len(relation))]
    column = hop.left_column if side == "left" else hop.right_column
    if column is None:
        return relation.join_keys()
    return list(relation.column(column))


def connector_groups(
    relations: Sequence[Relation], hops: Sequence[HopSpec], i: int
) -> dict[tuple[object, object], list[int]]:
    """Rows of relation ``i`` grouped by their hop connector values.

    Two rows in one group are interchangeable within every chain (they
    share the incoming and outgoing connector values), which is exactly
    the substitution set of the Theorem-4 pruning; the group sizes also
    drive the cost model's ``categorization_cost``.
    """
    rel = relations[i]
    incoming = hop_side_values(rel, hops[i - 1], "right") if i > 0 else None
    outgoing = (
        hop_side_values(rel, hops[i], "left") if i < len(relations) - 1 else None
    )
    groups: dict[tuple[object, object], list[int]] = {}
    for row in range(len(rel)):
        key = (
            incoming[row] if incoming is not None else None,
            outgoing[row] if outgoing is not None else None,
        )
        groups.setdefault(key, []).append(row)
    return groups


def validate_hops(relations: Sequence[Relation], hops: Sequence[HopSpec]) -> None:
    """Fail fast on hops naming missing columns or empty join keys.

    Checked *before* any chain is enumerated, so a typo in a hop column
    costs nothing; error wording mirrors the two-way join errors.
    """
    for i, hop in enumerate(hops):
        sides = (("left", relations[i]), ("right", relations[i + 1]))
        if hop.kind == "cartesian":
            continue
        if hop.kind == "theta":
            for cond in hop.theta:
                for side, rel in sides:
                    attr = cond.left_attr if side == "left" else cond.right_attr
                    if attr not in rel.schema:
                        raise JoinError(
                            f"hop {i}: relation {rel.name!r} has no attribute "
                            f"{attr!r} for theta condition {cond}"
                        )
            continue
        for side, rel in sides:
            column = hop.left_column if side == "left" else hop.right_column
            if column is None:
                if not rel.schema.join_names:
                    raise JoinError(
                        f"hop {i}: no join attributes declared on {rel.name!r}; "
                        "name a hop column explicitly or use a theta/cartesian hop"
                    )
            elif column not in rel.schema:
                raise JoinError(
                    f"hop {i}: relation {rel.name!r} has no attribute {column!r}"
                )


@dataclass(frozen=True)
class CascadeResult(QueryResult):
    """Answer of an m-way cascade KSJQ."""

    k: int
    chains: IntMatrix  # (s x m) array of skyline chains
    total_chains: int
    pruned_rows: int
    algorithm: str
    timings: TimingBreakdown = field(default_factory=TimingBreakdown)
    spec: Any | None = field(default=None, compare=False, repr=False)
    source: Any | None = field(default=None, compare=False, repr=False)

    @property
    def count(self) -> int:
        return int(self.chains.shape[0])

    def chain_set(self) -> frozenset:
        return frozenset(tuple(int(x) for x in row) for row in self.chains)

    def _source_relations(self) -> Sequence[Relation]:
        source = self._require_source()
        relations = getattr(source, "relations", source)
        return tuple(relations)

    def to_records(self) -> list[dict[str, object]]:
        """Skyline chains as dicts: per-relation columns prefixed ``r{i}.``.

        Prefixes are one-based (``r1.``, ``r2.``, ...), matching the
        two-way :meth:`KSJQResult.to_records` layout. Needs the source
        plan or relations (attached when the cascade runs through an
        :class:`repro.api.Engine`).
        """
        relations = self._source_relations()
        records: list[dict[str, object]] = []
        for chain in self.chains:
            rec: dict[str, object] = {}
            for i, (rel, row) in enumerate(zip(relations, chain), start=1):
                rec[f"r{i}._row"] = int(row)
                for name, value in rel.record(int(row)).items():
                    rec[f"r{i}.{name}"] = value
            records.append(rec)
        return records


def _partner_lookup(
    left_rel: Relation,
    right_rel: Relation,
    hop: HopSpec,
    right_rows: IntMatrix,
) -> Callable[[int], list[int]]:
    """``left_row -> list of compatible right rows`` for one hop."""
    if hop.kind == "cartesian":
        partners = [int(r) for r in right_rows]
        return lambda row: partners

    if hop.kind == "theta":
        left_cols = [
            np.asarray(left_rel.column(c.left_attr), dtype=np.float64)
            for c in hop.theta
        ]
        right_cols = [
            np.asarray(right_rel.column(c.right_attr), dtype=np.float64)[right_rows]
            for c in hop.theta
        ]
        cache: dict[int, list[int]] = {}

        def theta_partners(row: int) -> list[int]:
            if row not in cache:
                mask = theta_conjunction_mask(
                    hop.theta, [lvals[row] for lvals in left_cols], right_cols
                )
                cache[row] = [int(r) for r in right_rows[mask]]
            return cache[row]

        return theta_partners

    left_values = hop_side_values(left_rel, hop, "left")
    right_values = hop_side_values(right_rel, hop, "right")
    groups: dict[object, list[int]] = {}
    for row in right_rows:
        groups.setdefault(right_values[int(row)], []).append(int(row))
    empty: list[int] = []
    return lambda row: groups.get(left_values[row], empty)


def cascade_chains(
    relations: Sequence[Relation],
    hops: HopsLike = None,
    keep: Sequence[IntMatrix] | None = None,
) -> IntMatrix:
    """Enumerate join-compatible chains ``(i_1, ..., i_m)`` as an (s x m) array.

    ``hops`` accepts anything :func:`normalize_hops` does; ``keep``
    optionally restricts each relation to a row subset (used by the
    pruned algorithm).
    """
    hops = normalize_hops(len(relations), hops)
    masks = (
        [np.asarray(rows, dtype=np.intp) for rows in keep]
        if keep is not None
        else [np.arange(len(rel)) for rel in relations]
    )
    # Serving deadline (if any): the chain count can explode
    # combinatorially, so enumeration itself is a cancellation point.
    # Nothing is verified yet, so the partial answer is empty.
    deadline = active_deadline()
    ticks = 0
    chains = masks[0].reshape(-1, 1)
    for idx, hop in enumerate(hops):
        partners_of = _partner_lookup(
            relations[idx], relations[idx + 1], hop, masks[idx + 1]
        )
        out: list[IntVector] = []
        for chain in chains:
            if deadline is not None:
                ticks += 1
                if ticks % DEFAULT_CHECK_INTERVAL == 0:
                    deadline.check()
            for partner in partners_of(int(chain[-1])):
                out.append(np.append(chain, partner))
        chains = (
            np.asarray(out, dtype=np.intp)
            if out
            else np.empty((0, idx + 2), dtype=np.intp)
        )
    return chains


def cascade_oriented(
    relations: Sequence[Relation],
    chains: IntMatrix,
    aggregate: AggregateFunction | None,
) -> FloatMatrix:
    """Oriented joined matrix: locals per relation + folded aggregates."""
    if chains.shape[0] == 0:
        width = sum(rel.schema.l for rel in relations) + relations[0].schema.a
        return np.empty((0, width), dtype=np.float64)
    blocks = [rel.oriented_local()[chains[:, i]] for i, rel in enumerate(relations)]
    a = relations[0].schema.a
    if a:
        assert aggregate is not None  # required by schemas with a > 0
        agg_names = list(relations[0].schema.aggregate_names)
        combined = relations[0].matrix[chains[:, 0]][
            :, relations[0].aggregate_column_indices()
        ]
        for i in range(1, len(relations)):
            rel = relations[i]
            combined = aggregate(
                combined, rel.matrix[chains[:, i]][:, rel.aggregate_column_indices()]
            )
        signs = np.asarray(
            [relations[0].schema[name].preference.sign for name in agg_names]
        )
        blocks.append(combined * signs)
    return np.concatenate(blocks, axis=1)


def theta_weight_sums(
    left_rel: Relation,
    right_rel: Relation,
    hop: HopSpec,
    weights: FloatVector,
) -> FloatVector:
    """Per-left-row sums of right-row ``weights`` over one theta hop.

    The chain-count DP building block for theta hops: with unit weights
    this counts partners. Single conditions use a sort + prefix-sum
    (O((n+m) log m)); conjunctions fall back to per-row masks.
    """
    if len(hop.theta) == 1:
        from ..relational.groups import ThetaOp

        cond = hop.theta[0]
        lvals = np.asarray(left_rel.column(cond.left_attr), dtype=np.float64)
        rvals = np.asarray(right_rel.column(cond.right_attr), dtype=np.float64)
        order = np.argsort(rvals, kind="stable")
        rsorted = rvals[order]
        prefix = np.concatenate([[0.0], np.cumsum(weights[order])])
        out = np.empty(len(left_rel), dtype=np.float64)
        for i, value in enumerate(lvals):
            if cond.op is ThetaOp.LT:
                lo = int(np.searchsorted(rsorted, value, side="right"))
                out[i] = prefix[-1] - prefix[lo]
            elif cond.op is ThetaOp.LE:
                lo = int(np.searchsorted(rsorted, value, side="left"))
                out[i] = prefix[-1] - prefix[lo]
            elif cond.op is ThetaOp.GT:
                out[i] = prefix[int(np.searchsorted(rsorted, value, side="left"))]
            else:
                out[i] = prefix[int(np.searchsorted(rsorted, value, side="right"))]
        return out
    left_cols = [
        np.asarray(left_rel.column(c.left_attr), dtype=np.float64) for c in hop.theta
    ]
    right_cols = [
        np.asarray(right_rel.column(c.right_attr), dtype=np.float64) for c in hop.theta
    ]
    out = np.empty(len(left_rel), dtype=np.float64)
    for i in range(len(left_rel)):
        mask = theta_conjunction_mask(
            hop.theta, [lvals[i] for lvals in left_cols], right_cols
        )
        out[i] = float(weights[mask].sum())
    return out


# ----------------------------------------------------------------------
# Plan-based algorithm runners (consumed by repro.api.Engine)
# ----------------------------------------------------------------------
def run_cascade_naive(plan: "CascadePlan", k: int) -> CascadeResult:
    """Algorithm ``naive``: full chain set, then the k-dominant skyline."""
    plan.params(k)
    clock = PhaseClock()
    with clock.phase("join"):
        all_chains = plan.chains()
        matrix = plan.oriented()
    with clock.phase("remaining"):
        deadline = active_deadline()
        if deadline is not None:
            skyline_idx = checkpointed_skyline(
                matrix,
                k,
                deadline,
                lambda survivors: tuple(
                    tuple(int(x) for x in all_chains[i]) for i in survivors
                ),
            )
        else:
            skyline_idx = k_dominant_skyline(matrix, k)
    return CascadeResult(
        k=k,
        chains=all_chains[skyline_idx],
        total_chains=int(all_chains.shape[0]),
        pruned_rows=0,
        algorithm="naive",
        timings=clock.freeze(),
    )


def run_cascade_pruned(plan: "CascadePlan", k: int) -> CascadeResult:
    """Algorithm ``pruned``: Theorem-4 NN pruning + verification."""
    plan.params(k)
    plan.require_strict_aggregate("pruned")
    clock = PhaseClock()
    with clock.phase("join"):
        all_chains = plan.chains()
        plan.oriented()  # charge join materialization to the join phase
    with clock.phase("grouping"):
        _, pruned_rows = plan.pruned_keep(k)
    with clock.phase("join"):
        candidates, cand_matrix = plan.pruned_candidates(k)
    with clock.phase("remaining"):
        full_sorted = plan.sorted_oriented()
        deadline = active_deadline()
        if deadline is not None:
            keep_idx = []

            def partial() -> tuple[tuple[int, ...], ...]:
                return tuple(
                    tuple(int(x) for x in candidates[pos]) for pos in keep_idx
                )

            for pos in range(candidates.shape[0]):
                deadline.check(partial)
                if not is_k_dominated(full_sorted, cand_matrix[pos], k):
                    keep_idx.append(pos)
        else:
            keep_idx = [
                pos
                for pos in range(candidates.shape[0])
                if not is_k_dominated(full_sorted, cand_matrix[pos], k)
            ]
    return CascadeResult(
        k=k,
        chains=candidates[keep_idx],
        total_chains=int(all_chains.shape[0]),
        pruned_rows=pruned_rows,
        algorithm="pruned",
        timings=clock.freeze(),
    )


def cascade_progressive(
    plan: "CascadePlan", k: int, algorithm: str = "pruned"
) -> Iterator[tuple[int, ...]]:
    """Yield skyline chains progressively (candidate order).

    Candidates — the Theorem-4 pruning survivors for ``algorithm=
    "pruned"``, every chain for ``"naive"`` — are verified one at a
    time against the full chain set, and each survivor is yielded as
    soon as it is decided: consuming a prefix performs only that
    prefix's verification work. Parameters are validated here, before
    the generator is created, so a bad ``k`` or a non-strictly-monotone
    aggregate under pruning fails at the call, not on first ``next()``.
    """
    plan.params(k)
    if algorithm == "auto":
        from ..api.engine import choose_cascade_algorithm

        algorithm, _, _ = choose_cascade_algorithm(plan)
    if algorithm not in ("naive", "pruned"):
        raise ParameterError(
            f"progressive cascades support 'naive' and 'pruned', got "
            f"{algorithm!r}; the sharded parallel and indexed paths decide "
            "candidates in bulk and do not stream"
        )
    if algorithm == "pruned":
        plan.require_strict_aggregate("pruned")

    def generate() -> Iterator[tuple[int, ...]]:
        deadline = active_deadline()
        emitted: list[tuple[int, ...]] = []

        def partial() -> tuple[tuple[int, ...], ...]:
            return tuple(emitted)

        if algorithm == "pruned":
            candidates, cand_matrix = plan.pruned_candidates(k)
        else:
            candidates, cand_matrix = plan.chains(), plan.oriented()
        full_sorted = plan.sorted_oriented()
        for pos in range(candidates.shape[0]):
            if deadline is not None:
                deadline.check(partial)
            if not is_k_dominated(full_sorted, cand_matrix[pos], k):
                chain = tuple(int(x) for x in candidates[pos])
                if deadline is not None:
                    emitted.append(chain)
                yield chain

    return generate()


def prune_rows(
    relations: Sequence[Relation],
    hops: Sequence[HopSpec],
    k: int,
    groups_per_relation: Sequence[dict[tuple[object, object], list[int]]] | None = None,
) -> list[IntVector]:
    """Per-relation NN pruning (m-way Theorem 4).

    A row of relation i may be discarded when some other row shares
    *both* its hop connector values (so it can substitute into every
    chain) and k'_i-dominates it, with ``k'_i = k − Σ_{j≠i} l_j``
    counted over all of relation i's base attributes. Substituting the
    dominator keeps the chain valid, matches all other components
    exactly, and wins at least ``k'_i − a`` locals plus the dominated
    aggregate inputs — at least k joined attributes in total
    (strictness via the strictly monotone aggregate). For theta hops
    the connector value is the exact theta-attribute tuple, so a
    sharer's partner set is identical and substitution stays valid.
    """
    total_locals = sum(rel.schema.l for rel in relations)
    keep: list[IntVector] = []
    for i, rel in enumerate(relations):
        k_prime = k - (total_locals - rel.schema.l)
        if k_prime < 1:
            keep.append(np.arange(len(rel)))
            continue
        # Group rows by the hop values that constrain substitution.
        groups = (
            groups_per_relation[i]
            if groups_per_relation is not None
            else connector_groups(relations, hops, i)
        )
        oriented = rel.oriented()
        survivors = []
        for rows in groups.values():
            sub = oriented[rows]
            for row in rows:
                if not is_k_dominated(sub, oriented[row], k_prime):
                    survivors.append(row)
        keep.append(np.asarray(sorted(survivors), dtype=np.intp))
    return keep


def cascade_ksjq(
    relations: Sequence[Relation],
    k: int,
    hops: HopsLike = None,
    aggregate: AggregateLike | None = None,
    algorithm: str = "pruned",
    engine: Engine | None = None,
    parallelism: int | str = "auto",
) -> CascadeResult:
    """m-way k-dominant skyline join over a cascaded join graph.

    A fail-fast wrapper over the shared default
    :class:`repro.api.Engine` (pass ``engine=`` to use your own):
    every parameter is validated *before* any chain is enumerated, and
    repeated calls over equal-content relations reuse the engine's
    cached :class:`~repro.core.plan.CascadePlan`. ``algorithm`` is
    ``"pruned"`` (default), ``"naive"``, ``"parallel"`` (the sharded
    chain-set path of :mod:`repro.core.parallel`), or ``"auto"``
    (cost-based choice over the plan's chain statistics);
    ``parallelism`` is ``"auto"`` or a shard-worker count.
    """
    from ..api.spec import QuerySpec
    from .query import default_engine

    spec = QuerySpec.for_cascade(
        k=k, hops=hops, aggregate=aggregate, algorithm=algorithm,
        parallelism=parallelism,
    )
    eng = engine if engine is not None else default_engine()
    return eng.execute(*relations, spec=spec)
