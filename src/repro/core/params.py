"""KSJQ problem parameters and derived thresholds (paper Sec. 3, 5.4, 5.6).

Given base relations with ``d1``/``d2`` skyline attributes of which
``a`` are aggregated (``l_i = d_i - a`` local attributes) and a query
parameter ``k``, the algorithms derive:

* ``k1_prime = k - l2`` / ``k2_prime = k - l1`` — the categorization
  thresholds, counted over **all** ``d_i`` base skyline attributes.
  Without aggregation this equals the paper's ``k'_i = k - d_other``
  (Sec. 5.4); with aggregation it equals ``k''_i + a`` (Sec. 5.6).
* ``k1_min_local = k - a - l2`` / ``k2_min_local = k - a - l1`` — the
  minimum number of *local* attributes a dominator's component must be
  better-or-equal in (``k''_i``); used by exact-mode target sets.

Validity (Problems 1-2): ``max(d1, d2) < k <= l1 + l2 + a``. The lower
bound guarantees ``k'_i >= 1`` so every base relation contributes at
least one preferred attribute.
"""

from __future__ import annotations

from collections.abc import Sequence

from dataclasses import dataclass

from ..errors import ParameterError
from ..relational.schema import RelationSchema

__all__ = ["KSJQParams", "CascadeParams"]


@dataclass(frozen=True)
class KSJQParams:
    """Validated parameter bundle for one KSJQ query."""

    k: int
    d1: int
    d2: int
    a: int

    def __post_init__(self) -> None:
        if self.a < 0 or self.a > min(self.d1, self.d2):
            raise ParameterError(
                f"a={self.a} must be within [0, min(d1, d2)={min(self.d1, self.d2)}]"
            )
        if self.d1 < 1 or self.d2 < 1:
            raise ParameterError("both relations need at least one skyline attribute")
        if not self.k_min <= self.k <= self.k_max:
            raise ParameterError(
                f"k={self.k} outside valid range [{self.k_min}, {self.k_max}] "
                f"(d1={self.d1}, d2={self.d2}, a={self.a}); "
                "the paper requires max(d1, d2) < k <= l1 + l2 + a"
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_schemas(
        cls, left: RelationSchema, right: RelationSchema, k: int
    ) -> "KSJQParams":
        """Derive parameters from the two base schemas."""
        left.validate_compatible_aggregates(right)
        return cls(k=k, d1=left.d, d2=right.d, a=left.a)

    # ------------------------------------------------------------------
    @property
    def l1(self) -> int:
        """Local (non-aggregate) skyline attributes of R1."""
        return self.d1 - self.a

    @property
    def l2(self) -> int:
        """Local (non-aggregate) skyline attributes of R2."""
        return self.d2 - self.a

    @property
    def joined_d(self) -> int:
        """Skyline attributes of the joined relation (``l1 + l2 + a``)."""
        return self.l1 + self.l2 + self.a

    @property
    def k_min(self) -> int:
        """Smallest valid ``k``: ``max(d1, d2) + 1`` (Sec. 3)."""
        return max(self.d1, self.d2) + 1

    @property
    def k_max(self) -> int:
        """Largest valid ``k``: all joined skyline attributes."""
        return self.joined_d

    @property
    def k1_prime(self) -> int:
        """Categorization threshold for R1 over its ``d1`` base attributes."""
        return self.k - self.l2

    @property
    def k2_prime(self) -> int:
        """Categorization threshold for R2 over its ``d2`` base attributes."""
        return self.k - self.l1

    @property
    def k1_min_local(self) -> int:
        """``k''_1``: minimum local better-or-equal count on the R1 side."""
        return self.k - self.a - self.l2

    @property
    def k2_min_local(self) -> int:
        """``k''_2``: minimum local better-or-equal count on the R2 side."""
        return self.k - self.a - self.l1

    def describe(self) -> str:
        """Readable summary of all derived quantities."""
        return (
            f"k={self.k} over joined d={self.joined_d} "
            f"(d1={self.d1}, d2={self.d2}, a={self.a}, l1={self.l1}, l2={self.l2}); "
            f"k'=({self.k1_prime}, {self.k2_prime}), k''=({self.k1_min_local}, "
            f"{self.k2_min_local}); valid k in [{self.k_min}, {self.k_max}]"
        )


@dataclass(frozen=True)
class CascadeParams:
    """Validated parameter bundle for an m-way cascade KSJQ.

    The m-way analogue of :class:`KSJQParams` (paper Sec. 2.3): given
    relations with ``d_i`` skyline attributes of which ``a`` are
    aggregated (``l_i = d_i - a`` local), the valid query range is
    ``max_i d_i < k <= sum_i l_i + a``. Per-relation pruning thresholds
    generalize Theorem 4: ``k'_i = k - sum_{j != i} l_j``, counted over
    relation ``i``'s ``d_i`` base attributes.
    """

    k: int
    ds: tuple[int, ...]
    a: int

    def __post_init__(self) -> None:
        if len(self.ds) < 2:
            raise ParameterError("a cascade needs at least two relations")
        if self.a < 0 or self.a > min(self.ds):
            raise ParameterError(
                f"a={self.a} must be within [0, min_i d_i={min(self.ds)}]"
            )
        if min(self.ds) < 1:
            raise ParameterError("every relation needs at least one skyline attribute")
        if not self.k_min <= self.k <= self.k_max:
            raise ParameterError(
                f"k={self.k} outside valid cascade range [{self.k_min}, {self.k_max}] "
                f"(d={tuple(self.ds)}, a={self.a}); "
                "the m-way analogue requires max_i d_i < k <= sum_i l_i + a"
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_schemas(
        cls, schemas: Sequence[RelationSchema], k: int
    ) -> "CascadeParams":
        """Derive parameters from the chain's base schemas."""
        first = schemas[0]
        for other in schemas[1:]:
            first.validate_compatible_aggregates(other)
        return cls(k=k, ds=tuple(s.d for s in schemas), a=first.a)

    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        """Number of relations in the chain."""
        return len(self.ds)

    @property
    def ls(self) -> tuple[int, ...]:
        """Local (non-aggregate) skyline attribute counts per relation."""
        return tuple(d - self.a for d in self.ds)

    @property
    def joined_d(self) -> int:
        """Skyline attributes of the joined chain (``sum_i l_i + a``)."""
        return sum(self.ls) + self.a

    @property
    def k_min(self) -> int:
        """Smallest valid ``k``: ``max_i d_i + 1``."""
        return max(self.ds) + 1

    @property
    def k_max(self) -> int:
        """Largest valid ``k``: all joined skyline attributes."""
        return self.joined_d

    def k_prime(self, i: int) -> int:
        """Pruning threshold for relation ``i`` (Theorem 4, m-way)."""
        return self.k - (sum(self.ls) - self.ls[i])

    def describe(self) -> str:
        """Readable summary of all derived quantities."""
        return (
            f"k={self.k} over joined d={self.joined_d} "
            f"(m={self.m}, d={tuple(self.ds)}, a={self.a}, l={self.ls}); "
            f"k'={tuple(self.k_prime(i) for i in range(self.m))}; "
            f"valid k in [{self.k_min}, {self.k_max}]"
        )
