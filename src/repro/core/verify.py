"""Candidate verification helpers shared by the optimized algorithms.

A candidate joined tuple survives iff no join-compatible pair drawn from
its components' target sets k-dominates it. The candidate pair itself is
always inside its own target join; that is harmless because a tuple is
never strictly better than itself (k-dominance requires one strictly
better attribute), and duplicated attribute vectors legitimately do not
dominate each other.
"""

from __future__ import annotations

from collections.abc import Sequence


from typing import TYPE_CHECKING

import numpy as np

from ..relational.join import JoinedView
from ..skyline.dominance import is_k_dominated
from .plan import JoinPlan

if TYPE_CHECKING:
    from .._typing import FloatMatrix, FloatVector

__all__ = ["dominated_by_target_join", "dominated_in_matrix", "sort_rows_for_early_exit"]


def dominated_by_target_join(
    plan: JoinPlan,
    view: JoinedView,
    tuple_vec: FloatVector,
    left_target_rows: Sequence[int],
    right_target_rows: Sequence[int],
    k: int,
) -> bool:
    """Is the oriented joined tuple dominated within the target join?

    Enumerates the join-compatible pairs of the two target row sets,
    materializes their oriented joined vectors and tests k-dominance.
    """
    candidates = plan.compatible_pairs(left_target_rows, right_target_rows)
    if candidates.shape[0] == 0:
        return False
    matrix = view.oriented_for_pairs(candidates)
    return is_k_dominated(matrix, tuple_vec, k)


def dominated_in_matrix(matrix: FloatMatrix, tuple_vec: FloatVector, k: int) -> bool:
    """Is the tuple k-dominated by any row of a precomputed joined matrix?"""
    return is_k_dominated(matrix, tuple_vec, k)


def sort_rows_for_early_exit(matrix: FloatMatrix) -> FloatMatrix:
    """Reorder rows by ascending attribute sum.

    Strong tuples (likely dominators) come first, so the blocked
    early-exit scan in :func:`~repro.skyline.dominance.is_k_dominated`
    usually terminates after the first block.
    """
    if matrix.shape[0] == 0:
        return matrix
    order = np.argsort(matrix.sum(axis=1), kind="stable")
    return matrix[order]
