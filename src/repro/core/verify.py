"""Candidate verification helpers shared by the optimized algorithms.

A candidate joined tuple survives iff no join-compatible pair drawn from
its components' target sets k-dominates it. The candidate pair itself is
always inside its own target join; that is harmless because a tuple is
never strictly better than itself (k-dominance requires one strictly
better attribute), and duplicated attribute vectors legitimately do not
dominate each other.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence


from typing import TYPE_CHECKING

import numpy as np

from ..relational.join import JoinedView
from ..serving.deadline import DEFAULT_CHECK_INTERVAL, Deadline
from ..skyline.dominance import is_k_dominated, k_dominated_any
from ..skyline.kdominant import k_dominant_candidates_block
from .plan import JoinPlan

if TYPE_CHECKING:
    from .._typing import FloatMatrix, FloatVector, IntVector

__all__ = [
    "checkpointed_skyline",
    "dominated_by_target_join",
    "dominated_in_matrix",
    "sort_rows_for_early_exit",
]


def dominated_by_target_join(
    plan: JoinPlan,
    view: JoinedView,
    tuple_vec: FloatVector,
    left_target_rows: Sequence[int],
    right_target_rows: Sequence[int],
    k: int,
) -> bool:
    """Is the oriented joined tuple dominated within the target join?

    Enumerates the join-compatible pairs of the two target row sets,
    materializes their oriented joined vectors and tests k-dominance.
    """
    candidates = plan.compatible_pairs(left_target_rows, right_target_rows)
    if candidates.shape[0] == 0:
        return False
    matrix = view.oriented_for_pairs(candidates)
    return is_k_dominated(matrix, tuple_vec, k)


def dominated_in_matrix(matrix: FloatMatrix, tuple_vec: FloatVector, k: int) -> bool:
    """Is the tuple k-dominated by any row of a precomputed joined matrix?"""
    return is_k_dominated(matrix, tuple_vec, k)


def sort_rows_for_early_exit(matrix: FloatMatrix) -> FloatMatrix:
    """Reorder rows by ascending attribute sum.

    Strong tuples (likely dominators) come first, so the blocked
    early-exit scan in :func:`~repro.skyline.dominance.is_k_dominated`
    usually terminates after the first block.
    """
    if matrix.shape[0] == 0:
        return matrix
    order = np.argsort(matrix.sum(axis=1), kind="stable")
    return matrix[order]


#: Candidate rows verified between two deadline checks in
#: :func:`checkpointed_skyline` — one check interval per vectorized
#: :func:`~repro.skyline.dominance.k_dominated_any` chunk.
DEADLINE_VERIFY_CHUNK = DEFAULT_CHECK_INTERVAL

#: Rows per candidate-generation chunk in :func:`checkpointed_skyline`.
#: Chunk-local candidate scans see fewer potential dominators than one
#: whole-matrix scan, so they survive a *superset* of candidates — the
#: exact verification pass still decides every one of them — but each
#: chunk is short enough (the block scan is superlinear in its input)
#: to keep deadline overshoot within tens of milliseconds.
DEADLINE_SCAN_CHUNK = 1024


def checkpointed_skyline(
    matrix: FloatMatrix,
    k: int,
    deadline: Deadline,
    partial_of: Callable[[Sequence[int]], tuple[tuple[int, ...], ...]],
) -> IntVector:
    """Exact k-dominant skyline with cooperative deadline checkpoints.

    Same answer (same sorted row indices) as
    :func:`~repro.skyline.kdominant.k_dominant_skyline`, but both scans
    run chunked — candidate generation over
    :data:`DEADLINE_SCAN_CHUNK`-row slices, verification over
    :data:`DEADLINE_VERIFY_CHUNK`-candidate slices — with a
    :meth:`Deadline.check` between chunks. On expiry the raised
    :class:`~repro.errors.DeadlineExceeded` carries
    ``partial_of(survivors)``, where ``survivors`` are the row indices
    fully verified so far — always a subset of the exact answer.
    """
    survivors: list[int] = []

    def partial() -> tuple[tuple[int, ...], ...]:
        return partial_of(survivors)

    n = int(matrix.shape[0])
    local_candidates: list[IntVector] = []
    for start in range(0, n, DEADLINE_SCAN_CHUNK):
        deadline.check(partial)
        stop = min(start + DEADLINE_SCAN_CHUNK, n)
        local_candidates.append(k_dominant_candidates_block(matrix[start:stop], k) + start)
    candidates = (
        np.concatenate(local_candidates) if local_candidates else np.empty(0, dtype=np.intp)
    )
    deadline.check(partial)
    sorted_matrix = sort_rows_for_early_exit(matrix)
    for start in range(0, int(candidates.size), DEADLINE_VERIFY_CHUNK):
        deadline.check(partial)
        chunk = candidates[start : start + DEADLINE_VERIFY_CHUNK]
        dominated = k_dominated_any(sorted_matrix, matrix[chunk], k)
        survivors.extend(int(c) for c in chunk[~dominated])
    deadline.check(partial)
    return np.asarray(survivors, dtype=np.intp)
