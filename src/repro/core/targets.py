"""Target sets (paper Sec. 6.2, Def. 5).

The target set of a base tuple ``u'`` is the set of tuples that could
serve as the R1-side (resp. R2-side) of a joined tuple dominating some
joined tuple built from ``u'``; tuples outside it can be ignored during
verification.

Two predicates are provided:

* **paper** (faithful): ``{u : #{i : u_i ⪯ u'_i over all d base
  attributes} >= k'}``. For an SS tuple this is exactly the paper's
  "itself plus tuples sharing at least k' attribute values" (a strict
  improvement anywhere would contradict SS membership); for SN tuples it
  equals the stored dominator set union the equal-sharers of Algo 3.
* **exact**: ``{u : #{i : u_i ⪯ u'_i over the l local attributes} >=
  k''}``. This is complete for any monotone aggregate and any ``a``
  (counting argument: a dominating joined tuple is better-or-equal in at
  least ``k`` joined attributes, of which at most ``l2`` come from the
  partner's locals and at most ``a`` from aggregates, leaving at least
  ``k - l2 - a = k''_1`` local attributes on this side). Without
  aggregation the two predicates coincide.

Both predicates include ``u'`` itself (its better-or-equal count versus
itself is ``d`` / ``l``), which Def. 5 requires.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..relational.relation import Relation
from ..skyline.dominance import boe_counts

if TYPE_CHECKING:
    from .._typing import IntVector

__all__ = ["target_rows_paper", "target_rows_exact"]


def target_rows_paper(relation: Relation, row: int, k_prime: int) -> IntVector:
    """Faithful target set: better-or-equal in >= k' of all base attributes."""
    matrix = relation.oriented()
    return np.flatnonzero(boe_counts(matrix, matrix[row]) >= k_prime)


def target_rows_exact(relation: Relation, row: int, k_min_local: int) -> IntVector:
    """Exact-mode target set: better-or-equal in >= k'' local attributes.

    When the relation has no aggregate inputs, the local matrix is the
    full matrix and callers should pass ``k_min_local = k'`` (the two
    predicates coincide).
    """
    matrix = relation.oriented_local()
    if matrix.shape[1] == 0:
        # No local attributes at all: every tuple is a potential partner.
        return np.arange(len(relation))
    return np.flatnonzero(boe_counts(matrix, matrix[row]) >= k_min_local)
