"""Join plans: one object describing how two base relations combine.

A :class:`JoinPlan` captures the join kind (equality / cartesian /
theta), the optional aggregate function, and memoizes the derived
structures every KSJQ algorithm needs: the joined view, group indexes,
categorizations, and compatible-pair enumeration between arbitrary row
subsets. Algorithms 1-3 all consume a plan, so naïve, grouping and
dominator-based runs are guaranteed to answer the same query.
"""

from __future__ import annotations

import hashlib
import math
import threading
from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, TypedDict

import numpy as np

from ..errors import AggregateError, JoinError, ParameterError
from ..relational.aggregates import AggregateFunction, get_aggregate
from ..relational.groups import ConjunctiveThetaIndex, GroupIndex, ThetaGroupIndex
from ..relational.join import (
    JoinedView,
    ThetaCondition,
    cartesian_pairs,
    equality_pairs,
    pairs_product,
    theta_conjunction_mask,
)
from ..relational.relation import Relation
from .categorize import Categorization, categorize, categorize_theta
from .params import CascadeParams, KSJQParams

if TYPE_CHECKING:
    from .._typing import (
        AggregateLike,
        FloatMatrix,
        HopsLike,
        IntMatrix,
        IntVector,
        JoinKey,
        ThetaLike,
    )
    from .index import CellPartition, DominanceIndex

__all__ = [
    "JoinPlan",
    "PlanStats",
    "PlanStatsDict",
    "CascadePlan",
    "CascadeStats",
    "CascadeStatsDict",
]


class PlanStatsDict(TypedDict):
    """Serialized :class:`PlanStats` (``kind`` is a string, counts are ints)."""

    kind: str
    n_left: int
    n_right: int
    left_group_count: int
    right_group_count: int
    shared_group_count: int
    join_size: int
    categorization_cost: int
    joined_width: int


class CascadeStatsDict(TypedDict):
    """Serialized :class:`CascadeStats`."""

    kind: str
    base_sizes: list[int]
    n_relations: int
    join_size: int
    categorization_cost: int
    joined_width: int


@dataclass(frozen=True)
class PlanStats:
    """Cardinality statistics of a prepared join, for cost-based choices.

    All counts are exact (derived from the group indexes), not sampled;
    nothing here materializes the joined view. ``categorization_cost``
    is an abstract cost in units of pairwise dominance comparisons: the
    SS/SN/NN categorization compares every tuple against its group, so
    it scales with the sum of squared group sizes on both sides.
    ``joined_width`` is the number of joined skyline attributes
    ``l1 + l2 + a`` — together with ``join_size`` it sizes the joined
    matrix that the sharded parallel path partitions
    (:func:`repro.core.parallel.plan_shards`).
    """

    kind: str
    n_left: int
    n_right: int
    left_group_count: int
    right_group_count: int
    shared_group_count: int
    join_size: int
    categorization_cost: int
    joined_width: int = 0

    @property
    def mean_cell_size(self) -> float:
        """Average joined-cell cardinality |L_g| * |R_g| over shared groups."""
        if self.shared_group_count == 0:
            return 0.0
        return self.join_size / self.shared_group_count

    # ------------------------------------------------------------------
    # Delta-maintenance cost model (repro.core.incremental)
    # ------------------------------------------------------------------
    def delta_pairs_estimate(self, delta_rows: int, side: str) -> float:
        """Expected joined pairs touched by a ``delta_rows``-row mutation.

        A mutated base row participates in ``join_size / n_side`` joined
        pairs on average (exact for cartesian joins; the uniform-key
        expectation for equality/theta joins), so a batch of
        ``delta_rows`` rows on one side touches about
        ``delta_rows * join_size / n_side`` pairs.
        """
        if side not in ("left", "right"):
            raise ParameterError(f"side must be 'left' or 'right', got {side!r}")
        n_side = self.n_left if side == "left" else self.n_right
        if n_side <= 0:
            return float(delta_rows)
        return float(delta_rows) * float(self.join_size) / float(n_side)

    def delta_maintenance_cost(self, delta_rows: int, side: str) -> float:
        """Estimated dominance comparisons to maintain an answer under a delta.

        Both delta paths are ``O(Δ_pairs · J)``: inserts verify the
        newcomer pairs against the full joined matrix and re-check the
        cached winners against the newcomers; deletes filter the
        surviving non-winners through the removed vectors and re-verify
        the touched candidates against the full surviving matrix.
        """
        return self.delta_pairs_estimate(delta_rows, side) * float(self.join_size)

    def recompute_cost(self) -> float:
        """Estimated comparisons of a from-scratch recompute (``J^2``),
        the quantity a delta's :meth:`delta_maintenance_cost` competes
        against in :class:`repro.core.incremental.MaintainedResult`."""
        return float(self.join_size) * float(self.join_size)

    # ------------------------------------------------------------------
    # Dominance-index cost model (repro.core.index)
    # ------------------------------------------------------------------
    def indexed_cost(self, state: str = "cold", span: float | None = None) -> float:
        """Estimated comparisons of the index-accelerated exact path.

        The indexed runner pays one cell-partition pass over the joined
        view (``O(J)``), then candidate generation + verification over
        the rows that *survive* cell pruning — modeled as the parallel
        path's ``J * sqrt(J)`` generation/verification term scaled by
        the survival fraction. ``span`` is the indexes'
        ``mean_cell_span`` selectivity signal when known (tight cells →
        strong pruning); without it a neutral 0.5 is assumed.
        ``state="cold"`` adds the build cost the first query pays: one
        ``O(n log n)`` sort-and-digitize pass per side plus the
        cell-bound pruning scan of the joined matrix.
        """
        if state not in ("cold", "warm"):
            raise ParameterError(f"state must be 'cold' or 'warm', got {state!r}")
        j = float(self.join_size)
        survive = min(1.0, max(span if span is not None else 0.5, 0.05))
        cost = j + survive * j * math.sqrt(j)
        if state == "cold":
            n1, n2 = float(max(self.n_left, 1)), float(max(self.n_right, 1))
            cost += n1 * math.log2(n1 + 1) + n2 * math.log2(n2 + 1) + j
        return cost

    def as_dict(self) -> PlanStatsDict:
        return {
            "kind": self.kind,
            "n_left": self.n_left,
            "n_right": self.n_right,
            "left_group_count": self.left_group_count,
            "right_group_count": self.right_group_count,
            "shared_group_count": self.shared_group_count,
            "join_size": self.join_size,
            "categorization_cost": self.categorization_cost,
            "joined_width": self.joined_width,
        }


class JoinPlan:
    """A prepared (but unexecuted) join of two base relations.

    Parameters
    ----------
    left, right:
        Base relations.
    kind:
        ``"equality"`` (default; uses the schemas' join attributes),
        ``"cartesian"`` (Sec. 6.5) or ``"theta"`` (Sec. 6.6).
    aggregate:
        Aggregate function or registry name; required iff the schemas
        mark aggregate attributes.
    theta:
        The :class:`ThetaCondition` (or conjunction sequence) for
        ``kind="theta"``.

    Memoization contract (checked by the repo linter's R2 rule):
    derived structures are built under double-checked locking, so the
    lock-free fast-path *reads* are legal but every write must hold
    ``_memo_lock``.

    # guarded-by-writes: _memo_lock: _view, _left_groups, _right_groups, _left_theta, _right_theta, _stats, _side_indexes, _cell_partitions
    """

    def __init__(
        self,
        left: Relation,
        right: Relation,
        kind: str = "equality",
        aggregate: AggregateLike | None = None,
        theta: ThetaLike | None = None,
    ) -> None:
        if kind not in ("equality", "cartesian", "theta"):
            raise JoinError(f"unknown join kind {kind!r}")
        if kind == "theta" and theta is None:
            raise JoinError("kind='theta' requires a ThetaCondition")
        if kind != "theta" and theta is not None:
            raise JoinError(f"theta condition given but kind={kind!r}")
        self.left = left
        self.right = right
        self.kind = kind
        if theta is not None:
            from ..relational.join import normalize_theta

            self.theta_conditions: tuple[ThetaCondition, ...] = normalize_theta(theta)
            self.theta: ThetaCondition | None = self.theta_conditions[0]
        else:
            self.theta_conditions = ()
            self.theta = None
        left.schema.validate_compatible_aggregates(right.schema)
        if left.schema.a and aggregate is None:
            raise JoinError("schemas declare aggregate attributes; pass aggregate=...")
        self.aggregate: AggregateFunction | None = (
            get_aggregate(aggregate) if aggregate is not None else None
        )

        self._view: JoinedView | None = None
        self._left_groups: GroupIndex | None = None
        self._right_groups: GroupIndex | None = None
        self._left_theta: ThetaGroupIndex | ConjunctiveThetaIndex | None = None
        self._right_theta: ThetaGroupIndex | ConjunctiveThetaIndex | None = None
        self._stats: PlanStats | None = None
        self._side_indexes: dict[str, DominanceIndex] = {}
        self._cell_partitions: dict[tuple[object, object], CellPartition] = {}
        # Cached plans are shared by every concurrent Engine.execute
        # caller, so lazy builds are guarded (double-checked) by a
        # reentrant lock: derived structures are built exactly once.
        self._memo_lock = threading.RLock()

    # ------------------------------------------------------------------
    def params(self, k: int) -> KSJQParams:
        """Validated KSJQ parameters for this plan at a given ``k``."""
        return KSJQParams.from_schemas(self.left.schema, self.right.schema, k)

    def require_strict_aggregate(self, algorithm: str) -> None:
        """Optimized algorithms need strict monotonicity (see DESIGN.md)."""
        if self.aggregate is not None and not self.aggregate.strictly_monotone:
            raise AggregateError(
                f"{algorithm}: aggregate {self.aggregate.name!r} is not strictly "
                "monotone; its NN-pruning proof does not apply. Use the naive "
                "algorithm or a strictly monotone aggregate such as 'sum'."
            )

    # ------------------------------------------------------------------
    # Memoized derived structures
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable content digest of the plan: inputs plus join config.

        Combines both relations' content fingerprints with the join
        kind, aggregate and theta conditions, so two plans with equal
        fingerprints answer every query identically. Engines use
        version tokens (cheaper under mutation) for cache keys; the
        fingerprint is the durable cross-process identity.
        """
        h = hashlib.sha1()
        h.update(self.left.fingerprint().encode())
        h.update(self.right.fingerprint().encode())
        agg = self.aggregate.name if self.aggregate is not None else ""
        h.update(f"|{self.kind}|{agg}|".encode())
        for cond in self.theta_conditions:
            h.update(str(cond).encode())
        return h.hexdigest()

    def view(self) -> JoinedView:
        """The joined view (pair enumeration happens on first call)."""
        if self._view is None:
            with self._memo_lock:
                if self._view is None:
                    if self.kind == "equality":
                        pairs = equality_pairs(self.left_groups(), self.right_groups())
                    elif self.kind == "cartesian":
                        pairs = cartesian_pairs(len(self.left), len(self.right))
                    else:
                        from ..relational.join import theta_pairs

                        pairs = theta_pairs(self.left, self.right, self.theta_conditions)
                    self._view = JoinedView(
                        self.left, self.right, pairs, aggregate=self.aggregate
                    )
        return self._view

    def stats(self) -> PlanStats:
        """Exact cardinality statistics without materializing the view.

        For equality joins the join size is ``sum_g |L_g| * |R_g|`` over
        shared group keys (group-index arithmetic only); for cartesian
        joins it is ``n1 * n2``; theta joins count partners via the
        sorted-column binary search of :meth:`compatible_pair_count`.
        """
        if self._stats is None:
            with self._memo_lock:
                if self._stats is not None:
                    return self._stats
                n1, n2 = len(self.left), len(self.right)
                if self.kind == "equality":
                    left_sizes = self.left_groups().sizes()
                    right_sizes = self.right_groups().sizes()
                    shared = set(left_sizes) & set(right_sizes)
                    join_size = sum(left_sizes[key] * right_sizes[key] for key in shared)
                    cat_cost = sum(s * s for s in left_sizes.values()) + sum(
                        s * s for s in right_sizes.values()
                    )
                    left_g, right_g, shared_g = (
                        len(left_sizes),
                        len(right_sizes),
                        len(shared),
                    )
                elif self.kind == "cartesian":
                    join_size = n1 * n2
                    cat_cost = n1 * n1 + n2 * n2
                    left_g = right_g = shared_g = 1 if (n1 and n2) else 0
                else:
                    join_size = self.compatible_pair_count(range(n1), range(n2))
                    # Theta categorization probes each tuple's partner target
                    # set; the quadratic bound is the honest proxy.
                    cat_cost = n1 * n1 + n2 * n2
                    left_g, right_g, shared_g = n1, n2, min(n1, n2)
                self._stats = PlanStats(
                    kind=self.kind,
                    n_left=n1,
                    n_right=n2,
                    left_group_count=left_g,
                    right_group_count=right_g,
                    shared_group_count=shared_g,
                    join_size=int(join_size),
                    categorization_cost=int(cat_cost),
                    joined_width=(
                        self.left.schema.l
                        + self.right.schema.l
                        + self.left.schema.a
                    ),
                )
        return self._stats

    def left_groups(self) -> GroupIndex:
        if self._left_groups is None:
            with self._memo_lock:
                if self._left_groups is None:
                    self._left_groups = GroupIndex(self.left)
        return self._left_groups

    def right_groups(self) -> GroupIndex:
        if self._right_groups is None:
            with self._memo_lock:
                if self._right_groups is None:
                    self._right_groups = GroupIndex(self.right)
        return self._right_groups

    def left_theta_index(self) -> ThetaGroupIndex | ConjunctiveThetaIndex:
        if self._left_theta is None:
            with self._memo_lock:
                if self._left_theta is None:
                    indexes = [
                        ThetaGroupIndex(self.left, cond.left_attr, cond.op, is_left=True)
                        for cond in self.theta_conditions
                    ]
                    self._left_theta = (
                        indexes[0]
                        if len(indexes) == 1
                        else ConjunctiveThetaIndex(indexes)
                    )
        return self._left_theta

    def right_theta_index(self) -> ThetaGroupIndex | ConjunctiveThetaIndex:
        if self._right_theta is None:
            with self._memo_lock:
                if self._right_theta is None:
                    indexes = [
                        ThetaGroupIndex(self.right, cond.right_attr, cond.op, is_left=False)
                        for cond in self.theta_conditions
                    ]
                    self._right_theta = (
                        indexes[0]
                        if len(indexes) == 1
                        else ConjunctiveThetaIndex(indexes)
                    )
        return self._right_theta

    # ------------------------------------------------------------------
    # Dominance indexes (repro.core.index)
    # ------------------------------------------------------------------
    def side_index(self, side: str) -> tuple[DominanceIndex, bool]:
        """A dominance index for one base side, plan-locally memoized.

        The fallback when a side is not a registered dataset (anonymous
        relations, ``plan=`` overrides): the Catalog cannot persist an
        index for it, so the plan carries its own. Returns ``(index,
        built_now)`` so the engine can count builds vs. hits.
        """
        if side not in ("left", "right"):
            raise ParameterError(f"side must be 'left' or 'right', got {side!r}")
        index = self._side_indexes.get(side)
        if index is not None:
            return index, False
        with self._memo_lock:
            index = self._side_indexes.get(side)
            if index is not None:
                return index, False
            from .index import DominanceIndex

            index = DominanceIndex.build(self.left if side == "left" else self.right)
            self._side_indexes[side] = index
            return index, True

    def peek_side_index(self, side: str) -> DominanceIndex | None:
        """The plan-local index for ``side`` if already built (no build)."""
        return self._side_indexes.get(side)

    def drop_side_indexes(self) -> None:
        """Forget the plan-local side indexes and the partitions derived
        from them (resilience quarantine: after a failed indexed run the
        next indexed query rebuilds from scratch)."""
        with self._memo_lock:
            self._side_indexes = {}
            self._cell_partitions = {}

    def cell_partition(
        self, left_index: DominanceIndex, right_index: DominanceIndex
    ) -> CellPartition:
        """The joined-cell partition for one pair of side indexes.

        Memoized by the indexes' snapshot tokens, so repeated indexed
        queries through a cached plan skip the partition pass (and,
        via the partition's own per-``k`` memos, the pruning and
        candidate-generation passes too).
        """
        key = (left_index.token, right_index.token)
        partition = self._cell_partitions.get(key)
        if partition is None:
            with self._memo_lock:
                partition = self._cell_partitions.get(key)
                if partition is None:
                    from .index import CellPartition, joined_cell_ids

                    view = self.view()
                    partition = CellPartition(
                        view.oriented(),
                        joined_cell_ids(
                            left_index,
                            right_index,
                            view.pairs[:, 0],
                            view.pairs[:, 1],
                        ),
                    )
                    self._cell_partitions[key] = partition
        return partition

    # ------------------------------------------------------------------
    # Categorization (SS/SN/NN) per join kind
    # ------------------------------------------------------------------
    def categorize_left(self, k_prime: int) -> Categorization:
        """Categorize R1 under its threshold, honoring the join kind."""
        if self.kind == "equality":
            return categorize(self.left, k_prime, self.left_groups())
        if self.kind == "theta":
            return categorize_theta(self.left, k_prime, self.left_theta_index())
        return self._categorize_cartesian(self.left, k_prime)

    def categorize_right(self, k_prime: int) -> Categorization:
        """Categorize R2 under its threshold, honoring the join kind."""
        if self.kind == "equality":
            return categorize(self.right, k_prime, self.right_groups())
        if self.kind == "theta":
            return categorize_theta(self.right, k_prime, self.right_theta_index())
        return self._categorize_cartesian(self.right, k_prime)

    @staticmethod
    def _categorize_cartesian(relation: Relation, k_prime: int) -> Categorization:
        """Cartesian special case (Sec. 6.5): one group, hence no SN.

        A tuple is SS when it is a k'-dominant skyline of the whole
        relation and NN otherwise; the fate table then decides every
        joined tuple without any verification.
        """
        from ..skyline.dominance import is_k_dominated
        from .categorize import Category

        matrix = relation.oriented()
        labels = np.full(len(relation), Category.NN, dtype=np.int8)
        for row in range(len(relation)):
            if not is_k_dominated(matrix, matrix[row], k_prime):
                labels[row] = Category.SS
        return Categorization(relation=relation, k_prime=k_prime, labels=labels)

    # ------------------------------------------------------------------
    # Pair enumeration between row subsets
    # ------------------------------------------------------------------
    def compatible_pairs(
        self, left_rows: Sequence[int], right_rows: Sequence[int]
    ) -> IntMatrix:
        """Join-compatible pairs between two row subsets (m x 2)."""
        left_rows = np.asarray(list(left_rows), dtype=np.intp)
        right_rows = np.asarray(list(right_rows), dtype=np.intp)
        if left_rows.size == 0 or right_rows.size == 0:
            return np.empty((0, 2), dtype=np.intp)
        if self.kind == "cartesian":
            return pairs_product(left_rows, right_rows)
        if self.kind == "equality":
            lkeys = self.left.join_keys()
            by_key: dict[JoinKey, list[int]] = {}
            for r in right_rows:
                by_key.setdefault(self.right.join_key(int(r)), []).append(int(r))
            chunks = []
            for l in left_rows:
                partners = by_key.get(lkeys[int(l)])
                if partners:
                    chunks.append(pairs_product([int(l)], partners))
            if not chunks:
                return np.empty((0, 2), dtype=np.intp)
            return np.concatenate(chunks, axis=0)
        # theta: filter the cross product through the conjunction
        value_pairs = [
            (
                np.asarray(self.left.column(cond.left_attr), dtype=np.float64),
                np.asarray(self.right.column(cond.right_attr), dtype=np.float64),
            )
            for cond in self.theta_conditions
        ]
        right_subsets = [rvals[right_rows] for _, rvals in value_pairs]
        chunks = []
        for l in left_rows:
            mask = theta_conjunction_mask(
                self.theta_conditions,
                [lvals[int(l)] for lvals, _ in value_pairs],
                right_subsets,
            )
            partners = right_rows[mask]
            if partners.size:
                chunks.append(pairs_product([int(l)], partners))
        if not chunks:
            return np.empty((0, 2), dtype=np.intp)
        return np.concatenate(chunks, axis=0)

    def compatible_pair_count(
        self, left_rows: Sequence[int], right_rows: Sequence[int]
    ) -> int:
        """Number of join-compatible pairs, without enumerating them.

        Used by the find-k bound computation (Algos 5-6), where only the
        cell cardinalities matter: for an equality join the count is
        ``sum_g |L_g| * |R_g|`` over shared group keys.
        """
        left_rows = np.asarray(list(left_rows), dtype=np.intp)
        right_rows = np.asarray(list(right_rows), dtype=np.intp)
        if left_rows.size == 0 or right_rows.size == 0:
            return 0
        if self.kind == "cartesian":
            return int(left_rows.size) * int(right_rows.size)
        if self.kind == "equality":
            left_counts: dict[JoinKey, int] = {}
            for r in left_rows:
                key = self.left.join_key(int(r))
                left_counts[key] = left_counts.get(key, 0) + 1
            right_counts: dict[JoinKey, int] = {}
            for r in right_rows:
                key = self.right.join_key(int(r))
                right_counts[key] = right_counts.get(key, 0) + 1
            return sum(
                count * right_counts.get(key, 0) for key, count in left_counts.items()
            )
        # theta: sorted partner counts via binary search (single
        # condition); conjunctions fall back to enumeration.
        from ..relational.groups import ThetaOp

        if len(self.theta_conditions) > 1:
            return int(self.compatible_pairs(left_rows, right_rows).shape[0])
        lvals = np.asarray(self.left.column(self.theta.left_attr), dtype=np.float64)
        rvals = np.asarray(self.right.column(self.theta.right_attr), dtype=np.float64)
        rsorted = np.sort(rvals[right_rows])
        total = 0
        for l in left_rows:
            value = lvals[int(l)]
            if self.theta.op is ThetaOp.LT:
                total += rsorted.size - int(np.searchsorted(rsorted, value, side="right"))
            elif self.theta.op is ThetaOp.LE:
                total += rsorted.size - int(np.searchsorted(rsorted, value, side="left"))
            elif self.theta.op is ThetaOp.GT:
                total += int(np.searchsorted(rsorted, value, side="left"))
            else:
                total += int(np.searchsorted(rsorted, value, side="right"))
        return total

    def __repr__(self) -> str:
        agg = self.aggregate.name if self.aggregate else None
        return (
            f"<JoinPlan {self.kind} {self.left.name!r} x {self.right.name!r}, "
            f"aggregate={agg}, theta={self.theta}>"
        )


# ----------------------------------------------------------------------
# m-way cascade plans
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CascadeStats:
    """Cardinality statistics of a prepared cascade, for cost-based choices.

    ``join_size`` is the exact number of join-compatible chains,
    computed by a backward dynamic program over the hop structure
    (group-sum arithmetic for equality hops, prefix-sum binary search
    for single theta conditions) — nothing here materializes the chain
    set. ``categorization_cost`` is the abstract cost of the pruned
    algorithm's per-relation Theorem-4 grouping pass: the sum of
    squared connector-group sizes across every relation.
    """

    kind: str
    base_sizes: tuple[int, ...]
    join_size: int
    categorization_cost: int
    joined_width: int = 0

    @property
    def n_relations(self) -> int:
        """Number of relations in the chain."""
        return len(self.base_sizes)

    def indexed_cost(self, state: str = "cold", span: float | None = None) -> float:
        """Estimated comparisons of the index-accelerated cascade path.

        The m-way counterpart of :meth:`PlanStats.indexed_cost`: one
        cell-partition pass over the chain matrix plus generation and
        verification over the survival fraction; ``state="cold"`` adds
        the first/last-relation index builds and the pruning scan.
        """
        if state not in ("cold", "warm"):
            raise ParameterError(f"state must be 'cold' or 'warm', got {state!r}")
        s = float(self.join_size)
        survive = min(1.0, max(span if span is not None else 0.5, 0.05))
        cost = s + survive * s * math.sqrt(s)
        if state == "cold":
            first = float(max(self.base_sizes[0], 1))
            last = float(max(self.base_sizes[-1], 1))
            cost += first * math.log2(first + 1) + last * math.log2(last + 1) + s
        return cost

    def as_dict(self) -> CascadeStatsDict:
        return {
            "kind": self.kind,
            "base_sizes": list(self.base_sizes),
            "n_relations": self.n_relations,
            "join_size": self.join_size,
            "categorization_cost": self.categorization_cost,
            "joined_width": self.joined_width,
        }


class CascadePlan:
    """A prepared (but unexecuted) cascade of m base relations.

    The m-way counterpart of :class:`JoinPlan`: validates the join
    graph eagerly (hop count, hop column existence, aggregate
    compatibility — all *before* any chain is enumerated) and memoizes
    the derived structures the cascade algorithms share: the chain set,
    the oriented joined matrix, the per-k Theorem-4 pruning, and exact
    chain-count statistics.

    Parameters
    ----------
    relations:
        Ordered chain of base relations (at least two).
    hops:
        ``m - 1`` hop conditions; anything
        :func:`repro.core.cascade.normalize_hops` accepts. ``None``
        selects composite-key equality for every hop.
    aggregate:
        Aggregate function or registry name; required iff the schemas
        mark aggregate attributes.

    Memoization contract (checked by the repo linter's R2 rule); reads
    are double-checked-locking fast paths, writes hold ``_memo_lock``.

    # guarded-by-writes: _memo_lock: _chains, _oriented, _sorted, _pruned, _pruned_candidates, _groups, _stats, _side_indexes, _cell_partitions
    """

    kind = "cascade"

    def __init__(
        self,
        relations: Sequence[Relation],
        hops: HopsLike = None,
        aggregate: AggregateLike | None = None,
    ) -> None:
        from .cascade import normalize_hops, validate_hops

        relations = tuple(relations)
        if len(relations) < 2:
            raise JoinError("a cascade needs at least two relations")
        first = relations[0].schema
        for rel in relations[1:]:
            first.validate_compatible_aggregates(rel.schema)
        self.relations = relations
        self.hops = normalize_hops(len(relations), hops)
        validate_hops(relations, self.hops)
        if first.a and aggregate is None:
            raise JoinError("schemas declare aggregate attributes; pass aggregate=...")
        self.aggregate: AggregateFunction | None = (
            get_aggregate(aggregate) if aggregate is not None else None
        )

        self._chains: IntMatrix | None = None
        self._oriented: FloatMatrix | None = None
        self._sorted: FloatMatrix | None = None
        self._pruned: dict[int, tuple[list[IntVector], int]] = {}
        self._pruned_candidates: dict[int, tuple[IntMatrix, FloatMatrix]] = {}
        self._groups: list[dict[tuple[object, object], list[int]]] | None = None
        self._stats: CascadeStats | None = None
        self._side_indexes: dict[str, DominanceIndex] = {}
        self._cell_partitions: dict[tuple[object, object], CellPartition] = {}
        # Shared by concurrent engine callers; see JoinPlan._memo_lock.
        self._memo_lock = threading.RLock()

    # ------------------------------------------------------------------
    def params(self, k: int) -> CascadeParams:
        """Validated m-way parameters for this plan at a given ``k``."""
        return CascadeParams.from_schemas([r.schema for r in self.relations], k)

    def require_strict_aggregate(self, algorithm: str) -> None:
        """The pruned cascade's Theorem-4 proof needs strict monotonicity."""
        if self.aggregate is not None and not self.aggregate.strictly_monotone:
            raise ParameterError(
                f"{algorithm} cascade requires a strictly monotone aggregate; "
                "use naive"
            )

    # ------------------------------------------------------------------
    # Memoized derived structures
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable content digest: relation chain + hops + aggregate.

        The m-way counterpart of :meth:`JoinPlan.fingerprint`.
        """
        h = hashlib.sha1()
        for rel in self.relations:
            h.update(rel.fingerprint().encode())
        agg = self.aggregate.name if self.aggregate is not None else ""
        h.update(f"|cascade|{agg}|".encode())
        for hop in self.hops:
            h.update(hop.describe().encode())
        return h.hexdigest()

    def chains(self) -> IntMatrix:
        """The full (s x m) chain set (enumerated on first call)."""
        if self._chains is None:
            with self._memo_lock:
                if self._chains is None:
                    from .cascade import cascade_chains

                    self._chains = cascade_chains(self.relations, self.hops)
        return self._chains

    def oriented(self) -> FloatMatrix:
        """Oriented joined matrix of every chain, cached."""
        if self._oriented is None:
            with self._memo_lock:
                if self._oriented is None:
                    from .cascade import cascade_oriented

                    self._oriented = cascade_oriented(
                        self.relations, self.chains(), self.aggregate
                    )
        return self._oriented

    def sorted_oriented(self) -> FloatMatrix:
        """The oriented matrix pre-sorted for early-exit dominance checks."""
        if self._sorted is None:
            with self._memo_lock:
                if self._sorted is None:
                    from .verify import sort_rows_for_early_exit

                    self._sorted = sort_rows_for_early_exit(self.oriented())
        return self._sorted

    def connector_group_list(self) -> list[dict[tuple[object, object], list[int]]]:
        """Per-relation Theorem-4 connector groups (k-independent), cached."""
        if self._groups is None:
            with self._memo_lock:
                if self._groups is None:
                    from .cascade import connector_groups

                    self._groups = [
                        connector_groups(self.relations, self.hops, i)
                        for i in range(len(self.relations))
                    ]
        return self._groups

    def pruned_keep(self, k: int) -> tuple[list[IntVector], int]:
        """Per-relation survivor rows of the Theorem-4 pruning at ``k``.

        Returns ``(keep, pruned_rows)`` where ``keep`` lists surviving
        row indexes per relation; memoized per ``k`` so repeated
        queries (or a stream after a run) prune once.
        """
        if k not in self._pruned:
            with self._memo_lock:
                if k not in self._pruned:
                    from .cascade import prune_rows

                    keep = prune_rows(
                        self.relations,
                        self.hops,
                        k,
                        groups_per_relation=self.connector_group_list(),
                    )
                    pruned = sum(
                        len(rel) - len(rows) for rel, rows in zip(self.relations, keep)
                    )
                    self._pruned[k] = (keep, pruned)
        return self._pruned[k]

    def pruned_candidates(self, k: int) -> tuple[IntMatrix, FloatMatrix]:
        """Surviving candidate chains at ``k`` and their oriented matrix.

        Returns ``(candidates, matrix)``; memoized per ``k`` so a
        repeated pruned query through a cached plan is verification-only.
        """
        if k not in self._pruned_candidates:
            with self._memo_lock:
                if k not in self._pruned_candidates:
                    from .cascade import cascade_chains, cascade_oriented

                    keep, _ = self.pruned_keep(k)
                    candidates = cascade_chains(self.relations, self.hops, keep=keep)
                    matrix = cascade_oriented(self.relations, candidates, self.aggregate)
                    self._pruned_candidates[k] = (candidates, matrix)
        return self._pruned_candidates[k]

    # ------------------------------------------------------------------
    # Dominance indexes (repro.core.index)
    # ------------------------------------------------------------------
    def side_index(self, side: str) -> tuple[DominanceIndex, bool]:
        """Plan-local dominance index over the first or last relation.

        Cascades are bucketed by their end-point relations (chains are
        enumerated first-relation-major, and the last relation is the
        other independent axis). ``side`` is ``"first"`` or ``"last"``;
        returns ``(index, built_now)`` like :meth:`JoinPlan.side_index`.
        """
        if side not in ("first", "last"):
            raise ParameterError(f"side must be 'first' or 'last', got {side!r}")
        index = self._side_indexes.get(side)
        if index is not None:
            return index, False
        with self._memo_lock:
            index = self._side_indexes.get(side)
            if index is not None:
                return index, False
            from .index import DominanceIndex

            relation = self.relations[0] if side == "first" else self.relations[-1]
            index = DominanceIndex.build(relation)
            self._side_indexes[side] = index
            return index, True

    def peek_side_index(self, side: str) -> DominanceIndex | None:
        """The plan-local index for ``side`` if already built (no build)."""
        return self._side_indexes.get(side)

    def drop_side_indexes(self) -> None:
        """Forget the plan-local side indexes and derived partitions
        (resilience quarantine; see :meth:`JoinPlan.drop_side_indexes`)."""
        with self._memo_lock:
            self._side_indexes = {}
            self._cell_partitions = {}

    def cell_partition(
        self, first_index: DominanceIndex, last_index: DominanceIndex
    ) -> CellPartition:
        """Joined-cell partition of the chain set by its end-point cells
        (memoized by index tokens; see :meth:`JoinPlan.cell_partition`)."""
        key = (first_index.token, last_index.token)
        partition = self._cell_partitions.get(key)
        if partition is None:
            with self._memo_lock:
                partition = self._cell_partitions.get(key)
                if partition is None:
                    from .index import CellPartition, joined_cell_ids

                    chains = self.chains()
                    partition = CellPartition(
                        self.oriented(),
                        joined_cell_ids(
                            first_index, last_index, chains[:, 0], chains[:, -1]
                        ),
                    )
                    self._cell_partitions[key] = partition
        return partition

    def stats(self) -> CascadeStats:
        """Exact chain-count statistics without materializing the chains."""
        if self._stats is None:
            with self._memo_lock:
                if self._stats is not None:
                    return self._stats
                self._stats = self._compute_stats()
        return self._stats

    def _compute_stats(self) -> CascadeStats:
        from .cascade import hop_side_values, theta_weight_sums

        relations, hops = self.relations, self.hops
        weights = np.ones(len(relations[-1]), dtype=np.float64)
        for idx in range(len(hops) - 1, -1, -1):
            left_rel, right_rel, hop = relations[idx], relations[idx + 1], hops[idx]
            if hop.kind == "cartesian":
                weights = np.full(len(left_rel), float(weights.sum()))
            elif hop.kind == "theta":
                weights = theta_weight_sums(left_rel, right_rel, hop, weights)
            else:
                right_values = hop_side_values(right_rel, hop, "right")
                sums: dict[object, float] = {}
                for row, value in enumerate(right_values):
                    sums[value] = sums.get(value, 0.0) + float(weights[row])
                left_values = hop_side_values(left_rel, hop, "left")
                weights = np.asarray(
                    [sums.get(value, 0.0) for value in left_values],
                    dtype=np.float64,
                )
        join_size = int(round(float(weights.sum())))

        # Theorem-4 grouping cost: squared connector-group sizes,
        # over exactly the (cached) groups the pruning pass uses.
        cat_cost = sum(
            len(rows) * len(rows)
            for groups in self.connector_group_list()
            for rows in groups.values()
        )
        return CascadeStats(
            kind=self.kind,
            base_sizes=tuple(len(rel) for rel in relations),
            join_size=join_size,
            categorization_cost=int(cat_cost),
            joined_width=(
                sum(rel.schema.l for rel in relations) + relations[0].schema.a
            ),
        )

    def __repr__(self) -> str:
        agg = self.aggregate.name if self.aggregate else None
        names = " x ".join(repr(rel.name) for rel in self.relations)
        hops = "; ".join(h.describe() for h in self.hops)
        return f"<CascadePlan {names}, hops=[{hops}], aggregate={agg}>"
