"""Finding k from a desired skyline cardinality (paper Problems 3-4, Sec. 6.8-6.10).

Given a threshold δ, find the smallest ``k`` whose k-dominant skyline
join has at least δ tuples. Correctness rests on Lemma 1: the skyline
is monotone non-decreasing in ``k`` (a j-dominant skyline tuple is an
i-dominant skyline tuple for every ``i >= j``).

Three methods:

* ``naive`` (Algo 4) — evaluate every ``k`` from ``max(d1,d2)+1``
  upward with a full skyline computation.
* ``range`` (Algo 5) — before each full evaluation, bound the count via
  the categorization alone: the answer has at least ``|SS⋈SS|`` tuples
  and at most ``|SS⋈SS| + |likely| + |may be|``; only when δ falls
  between the bounds is the expensive evaluation run.
* ``binary`` (Algo 6) — binary-search the k range using the same bounds.

Following the paper, ``k = d`` (the maximum) is returned by default
when the loop exhausts the range *without evaluating it* — Algorithm 4
iterates ``while k < d`` and falls through to ``return d``.

Problem 4 ("at most δ") reduces to Problem 3 (Sec. 3); it is provided
as :func:`find_k_at_most_delta` implementing exactly the paper's
reduction including both corner cases.
"""

from __future__ import annotations


from ..errors import ParameterError
from .grouping import run_grouping
from .plan import JoinPlan
from .result import FindKResult, FindKStep
from .timing import PhaseClock

__all__ = ["find_k_at_least_delta", "find_k_at_most_delta"]


class _FindKContext:
    """Caches per-k bounds and exact counts, accumulating phase timings."""

    def __init__(self, plan: JoinPlan, mode: str, clock: PhaseClock) -> None:
        self.plan = plan
        self.mode = mode
        self.clock = clock
        d1, d2 = plan.left.schema.d, plan.right.schema.d
        a = plan.left.schema.a
        self.k_min = max(d1, d2) + 1
        self.k_max = (d1 - a) + (d2 - a) + a  # joined dimensionality
        if self.k_min > self.k_max:
            raise ParameterError(
                f"no valid k exists: k_min={self.k_min} > joined d={self.k_max}"
            )
        self._bounds: dict[int, tuple[int, int]] = {}
        self._counts: dict[int, int] = {}

    def bounds(self, k: int) -> tuple[int, int]:
        """(lower, upper) bounds on the skyline count at ``k`` (Sec. 6.9)."""
        if k not in self._bounds:
            params = self.plan.params(k)
            with self.clock.phase("grouping"):
                cat1 = self.plan.categorize_left(params.k1_prime)
                cat2 = self.plan.categorize_right(params.k2_prime)
            with self.clock.phase("join"):
                yes = self.plan.compatible_pair_count(cat1.ss_rows, cat2.ss_rows)
                likely = self.plan.compatible_pair_count(
                    cat1.ss_rows, cat2.sn_rows
                ) + self.plan.compatible_pair_count(cat1.sn_rows, cat2.ss_rows)
                maybe = self.plan.compatible_pair_count(cat1.sn_rows, cat2.sn_rows)
            lower = yes
            if self.mode == "exact" and params.a >= 1:
                # In exact mode the "yes" cell is itself verified (it
                # may contain false positives under aggregation, see
                # DESIGN.md errata), so |SS*SS| is not a certified lower
                # bound on the exact count; fall back to the trivial
                # one. Faithful mode keeps the paper's bound, which is
                # consistent with the faithful count by construction.
                lower = 0
            self._bounds[k] = (lower, yes + likely + maybe)
        return self._bounds[k]

    def exact_count(self, k: int) -> int:
        """Full skyline evaluation at ``k`` via the grouping algorithm."""
        if k not in self._counts:
            result = run_grouping(self.plan, k, mode=self.mode)
            for phase, seconds in result.timings.as_dict().items():
                if phase in ("grouping", "join", "remaining", "dominator"):
                    self.clock.add(phase, seconds)
            self._counts[k] = result.count
        return self._counts[k]


def find_k_at_least_delta(
    plan: JoinPlan,
    delta: int,
    method: str = "binary",
    mode: str = "faithful",
) -> FindKResult:
    """Problem 3: smallest ``k`` whose skyline has at least δ tuples."""
    if delta < 1:
        raise ParameterError(f"delta must be positive, got {delta}")
    if method not in ("naive", "range", "binary"):
        raise ParameterError(f"unknown find-k method {method!r}")
    clock = PhaseClock()
    ctx = _FindKContext(plan, mode, clock)
    steps: list[FindKStep] = []

    if method == "naive":
        k = _naive_search(ctx, delta, steps)
    elif method == "range":
        k = _range_search(ctx, delta, steps)
    else:
        k = _binary_search(ctx, delta, steps)

    return FindKResult(
        method=method, delta=delta, k=k, steps=tuple(steps), timings=clock.freeze()
    )


def find_k_at_most_delta(
    plan: JoinPlan,
    delta: int,
    method: str = "binary",
    mode: str = "faithful",
) -> FindKResult:
    """Problem 4: largest ``k`` whose skyline has at most δ tuples.

    Reduction from Problem 3 (Sec. 3): with ``k* = `` the Problem-3
    answer, the Problem-4 answer is ``k* - 1`` except when (a) ``k*`` is
    the smallest valid k, or (b) the ``k*``-dominant skyline has exactly
    δ tuples or ``k* = d``, in which case it is ``k*`` itself.
    """
    inner = find_k_at_least_delta(plan, delta, method=method, mode=mode)
    ctx = _FindKContext(plan, mode, PhaseClock())
    k_star = inner.k
    if k_star <= ctx.k_min:
        k = k_star
    elif k_star == ctx.k_max and ctx.exact_count(k_star) <= delta:
        k = k_star
    elif ctx.exact_count(k_star) == delta:
        k = k_star
    else:
        k = k_star - 1
    return FindKResult(
        method=f"{inner.method} (at-most reduction)",
        delta=delta,
        k=k,
        steps=inner.steps,
        timings=inner.timings,
    )


# ----------------------------------------------------------------------
# Search strategies
# ----------------------------------------------------------------------
def _naive_search(ctx: _FindKContext, delta: int, steps: list[FindKStep]) -> int:
    """Algorithm 4: linear scan with full evaluations."""
    k = ctx.k_min
    while k < ctx.k_max:
        count = ctx.exact_count(k)
        if count >= delta:
            steps.append(FindKStep(k, None, None, count, "answer"))
            return k
        steps.append(FindKStep(k, None, None, count, "advance"))
        k += 1
    steps.append(FindKStep(ctx.k_max, None, None, None, "default (range exhausted)"))
    return ctx.k_max


def _range_search(ctx: _FindKContext, delta: int, steps: list[FindKStep]) -> int:
    """Algorithm 5: linear scan short-circuited by categorization bounds."""
    k = ctx.k_min
    while k < ctx.k_max:
        lb, ub = ctx.bounds(k)
        if lb >= delta:
            steps.append(FindKStep(k, lb, ub, None, "answer (lower bound)"))
            return k
        if ub < delta:
            steps.append(FindKStep(k, lb, ub, None, "advance (upper bound)"))
            k += 1
            continue
        count = ctx.exact_count(k)
        if count >= delta:
            steps.append(FindKStep(k, lb, ub, count, "answer"))
            return k
        steps.append(FindKStep(k, lb, ub, count, "advance"))
        k += 1
    steps.append(FindKStep(ctx.k_max, None, None, None, "default (range exhausted)"))
    return ctx.k_max


def _binary_search(ctx: _FindKContext, delta: int, steps: list[FindKStep]) -> int:
    """Algorithm 6: binary search over k with bound short-circuits.

    Deviation from the printed pseudocode (documented erratum): the
    paper loops ``while l < h``, which exits without probing the final
    ``l == h`` value and can return an answer one too high (e.g. the
    worked example with delta = 1 yields 6 instead of the correct 5).
    We use the standard ``while l <= h``; the interval still shrinks on
    every iteration (``h = k - 1`` / ``l = k + 1``), so termination is
    unaffected. The paper's maximum ``k = d`` is still returned by
    default without evaluation, matching Algorithms 4-5.
    """
    low, high = ctx.k_min, ctx.k_max
    current = ctx.k_max
    while low <= high:
        k = (low + high) // 2
        lb, ub = ctx.bounds(k)
        if lb >= delta:
            current = k
            high = k - 1
            steps.append(FindKStep(k, lb, ub, None, "candidate (lower bound); go lower"))
        elif ub < delta:
            low = k + 1
            steps.append(FindKStep(k, lb, ub, None, "too small (upper bound); go higher"))
        else:
            count = ctx.exact_count(k)
            if count >= delta:
                current = k
                high = k - 1
                steps.append(FindKStep(k, lb, ub, count, "candidate; go lower"))
            else:
                low = k + 1
                steps.append(FindKStep(k, lb, ub, count, "too small; go higher"))
        if low >= current:
            steps.append(FindKStep(current, None, None, None, "lowest k reached"))
            return current
    return current
