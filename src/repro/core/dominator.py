"""Algorithm 3: the dominator-based KSJQ algorithm (paper Sec. 6.4).

The grouping algorithm checks SN-composed tuples against joins with an
entire base relation. Algorithm 3 instead precomputes, for every SS/SN
tuple, its *dominator set* — the k'-dominators plus the tuples sharing
the required number of attribute values plus the tuple itself, which is
exactly the predicate ``{u : better-or-equal count >= k'}`` (see
:mod:`repro.core.targets`) — and verifies each candidate joined tuple
against the join of its components' dominator sets only.

The saving is largest for SN⋈SN tuples (full-relation target becomes a
small set); the cost is the extra *dominator generation* phase, which
the paper's experiments show often outweighs the saving — reproduced in
our benchmarks.

Modes are as in :mod:`repro.core.grouping`.
"""

from __future__ import annotations


from typing import TYPE_CHECKING

import numpy as np

from ..errors import AlgorithmError
from ..skyline.dominance import is_k_dominated
from .categorize import Categorization
from .grouping import _vector_view, collect_cells, warn_if_unsound
from .plan import JoinPlan
from .result import KSJQResult
from .targets import target_rows_exact, target_rows_paper
from .timing import PhaseClock
from .verify import sort_rows_for_early_exit

if TYPE_CHECKING:
    from .._typing import IntMatrix, IntVector

__all__ = ["run_dominator"]


def run_dominator(plan: JoinPlan, k: int, mode: str = "faithful") -> KSJQResult:
    """Run Algorithm 3 on a prepared join plan."""
    if mode not in ("faithful", "exact"):
        raise AlgorithmError(f"unknown mode {mode!r} (use 'faithful' or 'exact')")
    params = plan.params(k)
    plan.require_strict_aggregate("dominator-based algorithm")
    warn_if_unsound(mode, params, "dominator-based algorithm")

    clock = PhaseClock()
    with clock.phase("grouping"):
        cat1 = plan.categorize_left(params.k1_prime)
        cat2 = plan.categorize_right(params.k2_prime)

    with clock.phase("join"):
        cells = collect_cells(plan, cat1, cat2)
        vec_view = _vector_view(plan)

    # Dominator sets for every tuple that participates in a candidate
    # cell (Algo 3 lines 6-13). In exact mode the complete local-count
    # predicate replaces the paper's k'-count predicate.
    with clock.phase("dominator"):
        if mode == "faithful":
            left_dom = {
                row: target_rows_paper(plan.left, row, params.k1_prime)
                for row in _candidate_rows(cat1)
            }
            right_dom = {
                row: target_rows_paper(plan.right, row, params.k2_prime)
                for row in _candidate_rows(cat2)
            }
        else:
            left_dom = {
                row: target_rows_exact(plan.left, row, params.k1_min_local)
                for row in _candidate_rows(cat1)
            }
            right_dom = {
                row: target_rows_exact(plan.right, row, params.k2_min_local)
                for row in _candidate_rows(cat2)
            }

    accepted: list[IntMatrix] = []
    checked = 0
    with clock.phase("remaining"):
        if mode == "faithful":
            accepted.append(cells["SS*SS"])  # "yes" cell, emitted directly
            check_cells = ("SS*SN", "SN*SS", "SN*SN")
        else:
            check_cells = ("SS*SS", "SS*SN", "SN*SS", "SN*SN")
        for name in check_cells:
            cell_pairs = cells[name]
            if cell_pairs.shape[0] == 0:
                continue
            vectors = vec_view.oriented_for_pairs(cell_pairs)
            keep: list[int] = []
            for pos in range(cell_pairs.shape[0]):
                u, v = int(cell_pairs[pos, 0]), int(cell_pairs[pos, 1])
                candidates = plan.compatible_pairs(left_dom[u], right_dom[v])
                if candidates.shape[0] == 0:
                    keep.append(pos)
                    continue
                matrix = sort_rows_for_early_exit(
                    vec_view.oriented_for_pairs(candidates)
                )
                if not is_k_dominated(matrix, vectors[pos], params.k):
                    keep.append(pos)
            checked += int(cell_pairs.shape[0])
            accepted.append(cell_pairs[keep])

    pairs = (
        np.concatenate([c for c in accepted if c.shape[0]], axis=0)
        if any(c.shape[0] for c in accepted)
        else np.empty((0, 2), dtype=np.intp)
    )
    return KSJQResult(
        algorithm="dominator",
        mode=mode,
        params=params,
        pairs=pairs,
        timings=clock.freeze(),
        left_counts=cat1.counts(),
        right_counts=cat2.counts(),
        cell_pair_counts={name: int(arr.shape[0]) for name, arr in cells.items()},
        checked=checked,
    )


def _candidate_rows(categorization: Categorization) -> IntVector:
    """Rows needing dominator sets: the SS and SN members (Algo 3)."""
    return np.concatenate([categorization.ss_rows, categorization.sn_rows])
