"""SS / SN / NN categorization of base relations (paper Sec. 5.2-5.4).

Under threshold ``k'``, relation ``R`` partitions into:

* ``SS`` — tuples not k'-dominated by *any* tuple of ``R`` (k'-dominant
  skyline of the whole relation; Def. 1);
* ``SN`` — tuples k'-dominant within their join group but k'-dominated
  by some tuple of another group (Def. 2);
* ``NN`` — tuples k'-dominated within their own group (Def. 3).

The categorization drives the fate table (paper Tables 4/5): joined
tuples composed solely of SS components are guaranteed k-dominant
skylines, any NN component makes them guaranteed non-skylines, and
mixed SS/SN compositions must be verified against target sets.

For non-equality join conditions (Sec. 6.6) the "own group" of a tuple
generalizes to the set of tuples guaranteed to join with at least the
same partners (:class:`~repro.relational.groups.ThetaGroupIndex`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..relational.groups import GroupIndex, ThetaGroupIndex
from ..relational.relation import Relation
from ..skyline.dominance import is_k_dominated

if TYPE_CHECKING:
    from numpy.typing import NDArray

    from .._typing import IntVector

__all__ = ["Category", "Fate", "FATE_TABLE", "Categorization", "categorize", "categorize_theta"]


class Category(enum.IntEnum):
    """Per-tuple categorization label."""

    SS = 0
    SN = 1
    NN = 2


class Fate(enum.Enum):
    """Fate of a joined tuple per its components' categories (Table 5)."""

    YES = "yes"  # guaranteed k-dominant skyline (Th. 1/3)
    LIKELY = "likely"  # probably skyline; verify vs augmented targets (Obs. 1/3)
    MAYBE = "may be"  # verify vs full target join (Obs. 2/4)
    NO = "no"  # guaranteed non-skyline (Th. 2/4)


#: (left category, right category) -> fate of the joined tuple.
FATE_TABLE: dict[tuple[Category, Category], Fate] = {
    (Category.SS, Category.SS): Fate.YES,
    (Category.SS, Category.SN): Fate.LIKELY,
    (Category.SN, Category.SS): Fate.LIKELY,
    (Category.SN, Category.SN): Fate.MAYBE,
    (Category.SS, Category.NN): Fate.NO,
    (Category.SN, Category.NN): Fate.NO,
    (Category.NN, Category.SS): Fate.NO,
    (Category.NN, Category.SN): Fate.NO,
    (Category.NN, Category.NN): Fate.NO,
}


@dataclass
class Categorization:
    """Result of categorizing one base relation under threshold ``k'``."""

    relation: Relation
    k_prime: int
    labels: NDArray[np.int8]  # one Category value per row

    @property
    def ss_rows(self) -> IntVector:
        """Row indices labelled SS."""
        return np.flatnonzero(self.labels == Category.SS)

    @property
    def sn_rows(self) -> IntVector:
        """Row indices labelled SN."""
        return np.flatnonzero(self.labels == Category.SN)

    @property
    def nn_rows(self) -> IntVector:
        """Row indices labelled NN."""
        return np.flatnonzero(self.labels == Category.NN)

    def category(self, row: int) -> Category:
        """Label of one row."""
        return Category(int(self.labels[row]))

    def counts(self) -> dict[str, int]:
        """Category name -> number of rows."""
        return {
            "SS": int((self.labels == Category.SS).sum()),
            "SN": int((self.labels == Category.SN).sum()),
            "NN": int((self.labels == Category.NN).sum()),
        }


def categorize(
    relation: Relation,
    k_prime: int,
    group_index: GroupIndex | None = None,
) -> Categorization:
    """Partition ``relation`` into SS/SN/NN under ``k_prime``-dominance.

    Group-local domination decides SN vs NN; whole-relation domination
    decides SS vs SN. Only group skylines need the (more expensive)
    whole-relation check, since an overall-undominated tuple is
    necessarily group-undominated.
    """
    if group_index is None:
        group_index = GroupIndex(relation)
    matrix = relation.oriented()
    n = len(relation)
    labels = np.full(n, Category.NN, dtype=np.int8)

    group_skyline: list[int] = []
    for _key, rows in group_index.items():
        sub = matrix[rows]
        for pos, row in enumerate(rows):
            if not is_k_dominated(sub, matrix[row], k_prime):
                group_skyline.append(row)

    for row in group_skyline:
        if is_k_dominated(matrix, matrix[row], k_prime):
            labels[row] = Category.SN
        else:
            labels[row] = Category.SS
    return Categorization(relation=relation, k_prime=k_prime, labels=labels)


def categorize_theta(
    relation: Relation,
    k_prime: int,
    theta_index: ThetaGroupIndex,
) -> Categorization:
    """Categorize one side of a non-equality join (Sec. 6.6).

    The "own group" of tuple ``u`` is the set of tuples guaranteed to be
    join-compatible with every partner of ``u`` (including ties on the
    theta attribute). If such a tuple k'-dominates ``u``, every joined
    tuple built from ``u`` is dominated by the corresponding joined
    tuple built from the dominator, so ``u`` is NN. The paper notes this
    may conservatively classify some would-be NN tuples as SN, which
    costs only extra verification, never correctness.
    """
    matrix = relation.oriented()
    n = len(relation)
    labels = np.full(n, Category.NN, dtype=np.int8)

    for row in range(n):
        superset = theta_index.superset_rows(row)
        sub = matrix[superset]
        if is_k_dominated(sub, matrix[row], k_prime):
            continue  # NN: dominated by a guaranteed-compatible tuple
        if is_k_dominated(matrix, matrix[row], k_prime):
            labels[row] = Category.SN
        else:
            labels[row] = Category.SS
    return Categorization(relation=relation, k_prime=k_prime, labels=labels)
