"""Cartesian-product special case (paper Sec. 6.5).

When the joined relation is a cartesian product, every tuple lives in
one join group, so no SN set exists: a tuple is SS iff it is a
k'-dominant skyline of its base relation and NN otherwise. The fate
table then decides every joined tuple — the answer is exactly
``SS1 x SS2`` — with no verification at all.

The same result falls out of :func:`~repro.core.grouping.run_grouping`
on a cartesian :class:`~repro.core.plan.JoinPlan` (the SN sets come out
empty); this module provides the direct algorithm, which skips cell
bookkeeping and is what a user should call when they know the join is a
cross product. In exact mode the SS⋈SS cell is verified like any other
candidate cell, guarding the ``a >= 2`` aggregate corner case.
"""

from __future__ import annotations



from ..errors import AlgorithmError, JoinError
from ..skyline.dominance import is_k_dominated
from .grouping import _vector_view, warn_if_unsound
from .plan import JoinPlan
from .result import KSJQResult
from .targets import target_rows_exact
from .timing import PhaseClock

__all__ = ["run_cartesian"]


def run_cartesian(plan: JoinPlan, k: int, mode: str = "faithful") -> KSJQResult:
    """Run the cartesian-product fast path on a cartesian join plan."""
    if plan.kind != "cartesian":
        raise JoinError(
            f"run_cartesian requires a cartesian join plan, got kind={plan.kind!r}"
        )
    if mode not in ("faithful", "exact"):
        raise AlgorithmError(f"unknown mode {mode!r} (use 'faithful' or 'exact')")
    params = plan.params(k)
    plan.require_strict_aggregate("cartesian algorithm")
    warn_if_unsound(mode, params, "cartesian algorithm")

    clock = PhaseClock()
    with clock.phase("grouping"):
        cat1 = plan.categorize_left(params.k1_prime)
        cat2 = plan.categorize_right(params.k2_prime)

    with clock.phase("join"):
        yes_pairs = plan.compatible_pairs(cat1.ss_rows, cat2.ss_rows)
        vec_view = _vector_view(plan)

    checked = 0
    with clock.phase("remaining"):
        if mode == "faithful" or yes_pairs.shape[0] == 0:
            pairs = yes_pairs
        else:
            vectors = vec_view.oriented_for_pairs(yes_pairs)
            left_cache = {}
            right_cache = {}
            keep: list[int] = []
            for pos in range(yes_pairs.shape[0]):
                u, v = int(yes_pairs[pos, 0]), int(yes_pairs[pos, 1])
                if u not in left_cache:
                    left_cache[u] = target_rows_exact(plan.left, u, params.k1_min_local)
                if v not in right_cache:
                    right_cache[v] = target_rows_exact(plan.right, v, params.k2_min_local)
                candidates = plan.compatible_pairs(left_cache[u], right_cache[v])
                matrix = vec_view.oriented_for_pairs(candidates)
                if not is_k_dominated(matrix, vectors[pos], params.k):
                    keep.append(pos)
            checked = int(yes_pairs.shape[0])
            pairs = yes_pairs[keep]

    return KSJQResult(
        algorithm="cartesian",
        mode=mode,
        params=params,
        pairs=pairs,
        timings=clock.freeze(),
        left_counts=cat1.counts(),
        right_counts=cat2.counts(),
        cell_pair_counts={"SS*SS": int(yes_pairs.shape[0])},
        checked=checked,
    )
