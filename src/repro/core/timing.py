"""Component-wise timing instrumentation.

The paper's figures split every algorithm's running time into four
stacked components (Sec. 7): *grouping* (computing SS/SN/NN), *join*
(materializing the non-pruned joined tuples), *dominator generation*
(Algo 3 only) and *remaining* (everything else, chiefly the candidate
verification). :class:`PhaseClock` accumulates wall-clock time into
those buckets and freezes into an immutable :class:`TimingBreakdown`
attached to each result, so the experiment harness can regenerate the
same stacked series.
"""

from __future__ import annotations

from collections.abc import Iterator

import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = ["PHASES", "TimingBreakdown", "PhaseClock"]

PHASES = ("grouping", "join", "dominator", "remaining")


@dataclass(frozen=True)
class TimingBreakdown:
    """Seconds spent per algorithm phase."""

    grouping: float = 0.0
    join: float = 0.0
    dominator: float = 0.0
    remaining: float = 0.0

    @property
    def total(self) -> float:
        """Sum of all components."""
        return self.grouping + self.join + self.dominator + self.remaining

    def as_dict(self) -> dict[str, float]:
        """Components plus total as a plain dict (for reports/CSV)."""
        return {
            "grouping": self.grouping,
            "join": self.join,
            "dominator": self.dominator,
            "remaining": self.remaining,
            "total": self.total,
        }

    def __add__(self, other: "TimingBreakdown") -> "TimingBreakdown":
        return TimingBreakdown(
            grouping=self.grouping + other.grouping,
            join=self.join + other.join,
            dominator=self.dominator + other.dominator,
            remaining=self.remaining + other.remaining,
        )

    def scaled(self, factor: float) -> "TimingBreakdown":
        """All components multiplied by ``factor`` (averaging helper)."""
        return TimingBreakdown(
            grouping=self.grouping * factor,
            join=self.join * factor,
            dominator=self.dominator * factor,
            remaining=self.remaining * factor,
        )


class PhaseClock:
    """Mutable accumulator of per-phase wall-clock time.

    Usage::

        clock = PhaseClock()
        with clock.phase("grouping"):
            ...
        result_timings = clock.freeze()
    """

    def __init__(self) -> None:
        self._acc: dict[str, float] = {name: 0.0 for name in PHASES}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Accumulate the wall time of the enclosed block into ``name``."""
        if name not in self._acc:
            raise KeyError(f"unknown phase {name!r}; valid phases: {PHASES}")
        start = time.perf_counter()
        try:
            yield
        finally:
            self._acc[name] += time.perf_counter() - start

    def add(self, name: str, seconds: float) -> None:
        """Add pre-measured seconds to a phase."""
        if name not in self._acc:
            raise KeyError(f"unknown phase {name!r}; valid phases: {PHASES}")
        self._acc[name] += seconds

    def freeze(self) -> TimingBreakdown:
        """Snapshot into an immutable breakdown."""
        return TimingBreakdown(**self._acc)
