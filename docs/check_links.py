#!/usr/bin/env python
"""Markdown link check for the documentation suite.

Scans every tracked ``*.md`` file in the repository for inline
markdown links (``[text](target)``) and verifies that each **relative**
target resolves to an existing file or directory (anchors are stripped;
external ``http(s)``/``mailto`` links are not fetched). Exits non-zero
listing every broken link, so CI fails when a doc page drifts from the
files it references.

Usage::

    python docs/check_links.py [root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")
SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "docs/_build", "bench-artifacts"}


def iter_markdown(root: Path):
    for path in sorted(root.rglob("*.md")):
        rel = path.relative_to(root)
        if any(str(rel).startswith(skip) for skip in SKIP_DIRS):
            continue
        yield path


def check_file(root: Path, path: Path) -> list:
    broken = []
    text = path.read_text(encoding="utf-8")
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            line = text.count("\n", 0, match.start()) + 1
            broken.append(f"{path.relative_to(root)}:{line}: broken link -> {target}")
    return broken


def main() -> int:
    default_root = Path(__file__).resolve().parent.parent
    root = Path(sys.argv[1]).resolve() if len(sys.argv) > 1 else default_root
    broken = []
    checked = 0
    for path in iter_markdown(root):
        checked += 1
        broken.extend(check_file(root, path))
    if broken:
        print(f"link check FAILED ({len(broken)} broken links in {checked} files):")
        for item in broken:
            print(f"  - {item}")
        return 1
    print(f"link check OK ({checked} markdown files)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
