#!/usr/bin/env python
"""Products x shipping offers: the paper's second motivating scenario.

"Common examples include ... a combination of product price and
shipping costs" (paper Sec. 1). A marketplace lists products per
category; shipping carriers serve categories with different fees and
delivery times. The buyer's preferences:

* total price = product price + shipping fee  (aggregated, lower better)
* product rating                               (local, higher better)
* product warranty months                      (local, higher better)
* shipping days                                (local, lower better)
* carrier reliability                          (local, higher better)

The full skyline over these 5 joined attributes is large; k-dominance
with k = 4 trims it to a manageable shortlist, and find-k picks k from
a desired shortlist size instead.

Both tables are registered as named, versioned datasets in an
:class:`repro.Engine` catalog; every query below names its inputs, so
the join plan is prepared once and reused, and the closing section
keeps the shortlist **live** with :meth:`repro.Engine.maintain` — a
catalog mutation (a new product arrives) is absorbed as an incremental
delta instead of forcing a full recompute.

Run:  python examples/product_shipping.py
"""

import numpy as np

import repro
from repro.relational import Relation, RelationSchema

RNG = np.random.default_rng(11)
CATEGORIES = ["electronics", "furniture", "sports", "books"]


def make_products(n=160) -> Relation:
    schema = RelationSchema.build(
        join=["category"],
        skyline=["price", "rating", "warranty", "reviews"],
        aggregate=["price"],
        higher_is_better=["rating", "warranty", "reviews"],
        payload=["sku"],
    )
    quality = RNG.beta(2, 2, n)
    return Relation(
        schema,
        {
            "category": [CATEGORIES[i % len(CATEGORIES)] for i in range(n)],
            "price": np.round(40 + 400 * quality + RNG.normal(0, 25, n), 2),
            "rating": np.round(1 + 4 * np.clip(quality + RNG.normal(0, 0.15, n), 0, 1), 1),
            "warranty": np.round(6 + 30 * np.clip(quality + RNG.normal(0, 0.2, n), 0, 1)),
            "reviews": np.round(RNG.uniform(0, 500, n)),
            "sku": [f"P{i:04d}" for i in range(n)],
        },
        name="products",
    )


def make_shipping(n=40) -> Relation:
    schema = RelationSchema.build(
        join=["category"],
        skyline=["price", "days", "reliability", "insurance"],
        aggregate=["price"],
        higher_is_better=["reliability", "insurance"],
        payload=["carrier"],
    )
    speed = RNG.beta(2, 2, n)
    return Relation(
        schema,
        {
            "category": [CATEGORIES[i % len(CATEGORIES)] for i in range(n)],
            "price": np.round(3 + 40 * speed + RNG.uniform(0, 5, n), 2),
            "days": np.round(1 + 9 * (1 - speed) + RNG.uniform(0, 2, n)),
            "reliability": np.round(70 + 29 * np.clip(speed + RNG.normal(0, 0.2, n), 0, 1)),
            "insurance": np.round(RNG.uniform(0, 100, n)),
            "carrier": [f"C{i:02d}" for i in range(n)],
        },
        name="shipping",
    )


def print_shortlist(result, products, shipping, k: int) -> None:
    shortlist = result.to_relation(name="shortlist")
    print(f"\n{result.count} shortlisted offers at k={k}; 8 cheapest bundles:")
    print(f"  {'sku':<7} {'carrier':<8} {'total':>8} {'rating':>7} {'days':>5}")
    for rec in shortlist.sort_by("price").head(8).records():
        product = products.record(rec["_left_row"])
        carrier = shipping.record(rec["_right_row"])
        print(f"  {product['sku']:<7} {carrier['carrier']:<8} "
              f"{rec['price']:>8.2f} {product['rating']:>7.1f} "
              f"{carrier['days']:>5.0f}")


def main() -> None:
    engine = repro.Engine()
    products_ds = engine.register("products", make_products())
    engine.register("shipping", make_shipping())

    joined = engine.plan("products", "shipping", aggregate="sum").stats().join_size
    print(f"{len(products_ds)} products x {len(engine.catalog['shipping'])} "
          f"shipping offers -> {joined} joined offers (per-category equality join)")

    # Full skyline (k = 7 joined attributes) vs k-dominant shortlists.
    print("\nshortlist size by k (Lemma 1: monotone in k):")
    offers = engine.query("products", "shipping").aggregate("sum").mode("exact")
    for k in (5, 6, 7):
        result = offers.run(k=k)
        kind = "full skyline" if k == 7 else f"{k}-dominant skyline"
        print(f"  k={k} ({kind}): {result.count} offers")

    # Problem 3: "I want to review about 15 offers" -> find k.
    tuned = offers.find_k(delta=15, method="binary")
    print(f"\nfind-k: smallest k with >= 15 offers is k={tuned.k} "
          f"({tuned.full_evaluations} full evaluations, "
          f"{len(tuned.steps)} probes)")

    # Keep the tuned shortlist live: the maintained handle absorbs
    # catalog mutations as incremental deltas instead of recomputing.
    spec = repro.QuerySpec.for_ksjq(k=tuned.k, aggregate="sum", mode="exact")
    with engine.maintain("products", "shipping", spec) as live:
        print_shortlist(live.result(), products_ds.relation,
                        engine.catalog["shipping"].relation, tuned.k)

        # A new bargain product arrives: the copy-on-write insert bumps
        # the dataset version; the live handle joins only the newcomer,
        # verifies its candidate pairs against the full merged matrix,
        # and evicts any cached winner the newcomer now k-dominates.
        products_ds.insert_rows([{
            "category": "electronics", "price": 49.99, "rating": 4.9,
            "warranty": 36, "reviews": 480, "sku": "P9999",
        }])
        stats = live.stats()
        print(f"\ninserted P9999 -> products now v{products_ds.version}, "
              f"{stats['applied_deltas']} delta absorbed by the live "
              f"shortlist ({stats['fallback_recomputes']} fallback recomputes)")
        print_shortlist(live.result(), products_ds.relation,
                        engine.catalog["shipping"].relation, tuned.k)


if __name__ == "__main__":
    main()
