#!/usr/bin/env python
"""Quickstart: the paper's worked example through the query engine.

Builds the two flight tables of the paper (Tables 1-2), then issues
queries through a :class:`repro.Engine`: the k-dominant skyline join at
k = 7 over the 8 combined skyline attributes (exactly the "yes" rows of
the paper's Table 3), an explain plan showing the cost-based algorithm
choice, and a find-k query — all sharing one cached join plan.

The legacy one-shot facade (``repro.ksjq(r1, r2, k=7)``) still works
and now runs on a shared default engine.

Run:  python examples/quickstart.py
"""

import repro
from repro.relational import Relation, RelationSchema

# Each relation: a join attribute (the stop-over city), four skyline
# attributes (all lower-is-better, as in the paper's footnote 2), and a
# flight-number payload.
schema = RelationSchema.build(
    join=["city"],
    skyline=["cost", "dur", "rtg", "amn"],
    payload=["fno"],
)

flights_from_a = Relation.from_records(schema, [
    {"fno": 11, "city": "C", "cost": 448, "dur": 3.2, "rtg": 40, "amn": 40},
    {"fno": 12, "city": "C", "cost": 468, "dur": 4.2, "rtg": 50, "amn": 38},
    {"fno": 13, "city": "D", "cost": 456, "dur": 3.8, "rtg": 60, "amn": 34},
    {"fno": 14, "city": "D", "cost": 460, "dur": 4.0, "rtg": 70, "amn": 32},
    {"fno": 15, "city": "E", "cost": 450, "dur": 3.4, "rtg": 30, "amn": 42},
    {"fno": 16, "city": "F", "cost": 452, "dur": 3.6, "rtg": 20, "amn": 36},
    {"fno": 17, "city": "G", "cost": 472, "dur": 4.6, "rtg": 80, "amn": 46},
    {"fno": 18, "city": "H", "cost": 451, "dur": 3.7, "rtg": 20, "amn": 37},
    {"fno": 19, "city": "E", "cost": 451, "dur": 3.7, "rtg": 40, "amn": 37},
], name="flights_from_A")

flights_to_b = Relation.from_records(schema, [
    {"fno": 21, "city": "D", "cost": 348, "dur": 2.2, "rtg": 40, "amn": 36},
    {"fno": 22, "city": "D", "cost": 368, "dur": 3.2, "rtg": 50, "amn": 34},
    {"fno": 23, "city": "C", "cost": 356, "dur": 2.8, "rtg": 60, "amn": 30},
    {"fno": 24, "city": "C", "cost": 360, "dur": 3.0, "rtg": 70, "amn": 28},
    {"fno": 25, "city": "E", "cost": 350, "dur": 2.4, "rtg": 30, "amn": 38},
    {"fno": 26, "city": "F", "cost": 352, "dur": 2.6, "rtg": 20, "amn": 32},
    {"fno": 27, "city": "G", "cost": 372, "dur": 3.6, "rtg": 80, "amn": 42},
    {"fno": 28, "city": "H", "cost": 350, "dur": 2.4, "rtg": 35, "amn": 39},
], name="flights_to_B")


def main() -> None:
    engine = repro.Engine()

    # What will run, before running it: the engine picks the cheapest
    # algorithm from the plan's cardinality statistics.
    print(engine.query(flights_from_a, flights_to_b).k(7).explain().summary())
    print()

    # A flight path must be better-or-equal in at least k = 7 of the
    # 4 + 4 joined attributes (and strictly better somewhere) to
    # dominate another path.
    result = engine.query(flights_from_a, flights_to_b).k(7).run()

    print(f"k-dominant skyline paths (k=7): {result.count}")
    fnos1 = list(flights_from_a.column("fno"))
    fnos2 = list(flights_to_b.column("fno"))
    for left_row, right_row in result.pairs:
        first = flights_from_a.record(int(left_row))
        second = flights_to_b.record(int(right_row))
        print(
            f"  flight {fnos1[int(left_row)]} -> {fnos2[int(right_row)]}"
            f" via {first['city']}:"
            f" cost {first['cost'] + second['cost']:.0f},"
            f" duration {first['dur'] + second['dur']:.1f}h"
        )

    print()
    print("algorithm:", result.algorithm, "| timings:",
          {k: round(v, 6) for k, v in result.timings.as_dict().items()})
    print("R1 categorization (SS/SN/NN):", result.left_counts)
    print("R2 categorization (SS/SN/NN):", result.right_counts)

    # The sharded parallel layer answers the same query byte-identically
    # (parallelism= demands workers; "auto" lets the cost model decide —
    # a join this small stays serial, as explain() reports).
    parallel = (
        engine.query(flights_from_a, flights_to_b)
        .algorithm("parallel")
        .parallelism(2)
        .k(7)
        .run()
    )
    assert parallel.pair_set() == result.pair_set()
    print()
    print("parallel path agrees:", parallel.count, "paths")

    # A second query over the same relations reuses the cached plan —
    # the join is prepared exactly once per (relations, join config).
    tuned = engine.query(flights_from_a, flights_to_b).find_k(delta=result.count)
    print()
    print(f"smallest k giving >= {result.count} paths: k={tuned.k}")
    print("plan cache:", engine.cache_info())


if __name__ == "__main__":
    main()
