#!/usr/bin/env python
"""Two-stop itineraries via cascaded joins + progressive results.

The paper notes that "the case for more than two base relations can be
handled by cascading the joins" (Sec. 2.3) and motivates progressive
result generation (Sec. 6.1). This example shows both through the
engine API:

1. a three-relation cascade (A -> hub1 -> hub2 -> B) built with
   ``engine.query(leg1, leg2, leg3).hop("dst", "src").hop("dst", "src")``
   — per-hop join conditions, total cost aggregated across all three
   legs, cost-based algorithm choice, an ``explain()`` plan, and a
   plan-cache hit on the second execution;
2. the progressive generator on a two-relation join, printing results
   as they are decided (guaranteed "yes" tuples stream out before any
   verification work happens).

Run:  python examples/two_stop_cascade.py
"""

import itertools
import warnings

import numpy as np

import repro
from repro.errors import SoundnessWarning
from repro.relational import Relation, RelationSchema

RNG = np.random.default_rng(17)


def make_leg(n, sources, destinations, name):
    schema = RelationSchema.build(
        skyline=["cost", "dur", "rtg"],
        aggregate=["cost"],
        higher_is_better=["rtg"],
        payload=["fno", "src", "dst"],
    )
    quality = RNG.beta(2, 2, n)
    return Relation(
        schema,
        {
            "cost": np.round(60 + 250 * quality + RNG.normal(0, 20, n)),
            "dur": np.round(1 + 3 * RNG.uniform(size=n), 1),
            "rtg": np.round(1 + 9 * np.clip(quality + RNG.normal(0, 0.2, n), 0, 1)),
            "fno": [f"{name}{i:03d}" for i in range(n)],
            "src": [sources[i % len(sources)] for i in range(n)],
            "dst": [destinations[i % len(destinations)] for i in range(n)],
        },
        name=name,
    )


def main() -> None:
    # Three legs: A -> {P,Q}, {P,Q} -> {R,S}, {R,S} -> B.
    leg1 = make_leg(40, ["A"], ["P", "Q"], "X")
    leg2 = make_leg(40, ["P", "Q"], ["R", "S"], "Y")
    leg3 = make_leg(40, ["R", "S"], ["B"], "Z")

    engine = repro.Engine()
    itinerary = (
        engine.query(leg1, leg2, leg3)
        .hop("dst", "src")
        .hop("dst", "src")
        .aggregate("sum")
    )

    # What would run, and why (exact chain count, cost-based choice):
    print(itinerary.k(7).explain().summary())

    # Joined attributes: 2 locals x 3 legs + 1 aggregate (total cost) = 7.
    print()
    for k in (6, 7):
        result = itinerary.k(k).run()
        print(f"k={k}: {result.total_chains} valid itineraries, "
              f"{result.pruned_rows} base tuples pruned before joining, "
              f"{result.count} in the {k}-dominant skyline "
              f"[{result.algorithm}]")

    # The second k reused the cached CascadePlan — join preparation and
    # chain enumeration were paid once.
    info = engine.cache_info()
    print(f"plan cache: {info['hits']} hits / {info['misses']} miss "
          f"across {info['requests']} queries")

    print("\nbest two-stop itineraries (first 5):")
    for record in itertools.islice(result.to_records(), 5):
        legs = [
            {key.split(".", 1)[1]: record[key] for key in record if key.startswith(prefix)}
            for prefix in ("r1.", "r2.", "r3.")
        ]
        total = sum(leg["cost"] for leg in legs)
        route = " -> ".join([legs[0]["src"]] + [leg["dst"] for leg in legs])
        print(f"  {route}: total cost {total:.0f}, "
              f"flights {'/'.join(leg['fno'] for leg in legs)}")

    # Progressive generation on a single hop (leg1 x leg2): consume the
    # first few skyline itineraries without paying for the full query.
    print("\nprogressive results on leg1 x leg2 (k=5 of 5):")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", SoundnessWarning)
        stream = engine.query(leg1, leg2).aggregate("sum").stream(k=5)
        for i, (u, v) in enumerate(itertools.islice(stream, 5)):
            a, b = leg1.record(u), leg2.record(v)
            print(f"  #{i + 1}: {a['fno']}+{b['fno']} via {a['dst']}, "
                  f"cost {a['cost'] + b['cost']:.0f}")


if __name__ == "__main__":
    main()
