#!/usr/bin/env python
"""Non-equality join condition: valid layovers (paper Sec. 6.6).

"In a flight combination, the arrival time of the first leg needs to be
earlier than the departure time of the second" — a theta join
``leg1.arrival < leg2.departure`` instead of an equality join. This
example builds timetabled legs and runs KSJQ over the theta join
through the engine API: ``engine.query(...).theta(condition)`` keeps
the full two-way algorithm family (naïve / grouping / dominator)
available, ``explain()`` shows the cost-based choice, and every
algorithm reuses one cached plan.

Run:  python examples/nonequality_layover.py
"""

import numpy as np

import repro
from repro.relational import Relation, RelationSchema, ThetaCondition, ThetaOp

RNG = np.random.default_rng(5)


def make_leg(n, start_hour, name) -> Relation:
    schema = RelationSchema.build(
        skyline=["cost", "duration", "comfort"],
        higher_is_better=["comfort"],
        payload=["fno", "arrival", "departure"],
    )
    departure = np.round(start_hour + RNG.uniform(0, 10, n), 1)
    duration = np.round(1.0 + RNG.uniform(0, 3, n), 1)
    quality = RNG.beta(2, 2, n)
    return Relation(
        schema,
        {
            "cost": np.round(80 + 300 * quality + RNG.normal(0, 30, n)),
            "duration": duration,
            "comfort": np.round(1 + 9 * np.clip(quality + RNG.normal(0, 0.2, n), 0, 1)),
            "fno": [f"{name}{i:03d}" for i in range(n)],
            "departure": departure,
            "arrival": np.round(departure + duration, 1),
        },
        name=name,
    )


def main() -> None:
    first_legs = make_leg(60, start_hour=6.0, name="A")
    second_legs = make_leg(60, start_hour=9.0, name="B")

    # Valid itinerary: first leg arrives before the second departs.
    condition = ThetaCondition("arrival", ThetaOp.LT, "departure")
    engine = repro.Engine()
    itinerary = engine.query(first_legs, second_legs).theta(condition)

    report = itinerary.k(6).explain()
    print(f"{len(first_legs)} x {len(second_legs)} legs -> "
          f"{report.stats.join_size} time-feasible itineraries")
    print("\n" + report.summary())

    # Sweep k over its valid range. Low k annihilates (cyclic mutual
    # domination, Sec. 2.2); the full k = 6 is the classic skyline join.
    print("\nskyline size by k:")
    for k in (4, 5, 6):
        print(f"  k={k}: {itinerary.k(k).run().count}")

    k = 6
    results = {
        algorithm: itinerary.algorithm(algorithm).k(k).run()
        for algorithm in ("naive", "grouping", "dominator")
    }
    answers = {r.pair_set() for r in results.values()}
    assert len(answers) == 1, "algorithms disagree on the theta join!"

    # Every sweep point and algorithm above reused one cached theta plan.
    info = engine.cache_info()
    print(f"\nplan cache: {info['hits']} hits / {info['misses']} miss "
          f"across {info['requests']} queries")

    print(f"\n{k}-dominant skyline itineraries: "
          f"{results['grouping'].count}")
    print("categorization under the join-compatibility superset rule:")
    print("  first legs :", results["grouping"].left_counts)
    print("  second legs:", results["grouping"].right_counts)

    print(f"\n{'itinerary':<12} {'layover':>8} {'cost':>6} {'comfort':>9}")
    shown = 0
    for left_row, right_row in results["grouping"].pairs:
        leg1 = first_legs.record(int(left_row))
        leg2 = second_legs.record(int(right_row))
        layover = leg2["departure"] - leg1["arrival"]
        print(f"{leg1['fno']}->{leg2['fno']:<6} {layover:>7.1f}h "
              f"{leg1['cost'] + leg2['cost']:>6.0f} "
              f"{(leg1['comfort'] + leg2['comfort']) / 2:>9.1f}")
        shown += 1
        if shown >= 8:
            remaining = results["grouping"].count - shown
            if remaining > 0:
                print(f"... and {remaining} more")
            break

    print("\ntimings (seconds):")
    for algorithm, result in results.items():
        print(f"  {algorithm:<10} total={result.timings.total:.4f} "
              f"grouping={result.timings.grouping:.4f} "
              f"remaining={result.timings.remaining:.4f}")


if __name__ == "__main__":
    main()
