#!/usr/bin/env python
"""Two-leg flight search with aggregated totals (paper Sec. 7.4 scenario).

A traveller flying Delhi -> Mumbai with one stop-over cares about the
*total* cost and *total* flying time of the itinerary — values that only
exist after the join — plus per-leg date-change fees, popularity and
amenities. This example:

1. builds the simulated 192 x 155 flight network over 13 hub cities
   (same shape as the paper's makemytrip crawl) and registers both legs
   as named datasets in an :class:`repro.Engine` catalog;
2. runs the Aggregate KSJQ (Problem 2) for k = 6, 7, 8 over the
   3 + 3 + 2 = 8 joined attributes, comparing all three algorithms —
   every query names its inputs (``engine.query("outbound", "inbound")``)
   and shares one cached join plan;
3. prints the best itineraries and the component timing breakdown,
   i.e. a small-scale rerun of the paper's Fig. 11;
4. boots the HTTP serving front-end over the same engine and queries
   it as a client with a 50 ms deadline — the partial answer that
   comes back is a verified subset of the full answer, which a second
   (unbounded) request then retrieves.

Run:  python examples/flight_stopovers.py
"""

import asyncio
import http.client
import json
import threading
import warnings

import repro
from repro.datagen import make_flight_relations
from repro.errors import SoundnessWarning
from repro.serving.server import KSJQServer, ServingConfig


def main() -> None:
    outbound, inbound = make_flight_relations()
    print(f"legs: {len(outbound)} Delhi->hub, {len(inbound)} hub->Mumbai")

    engine = repro.Engine()
    engine.register("outbound", outbound)
    engine.register("inbound", inbound)

    plan = engine.plan("outbound", "inbound", aggregate="sum")
    print(f"joined itineraries: {plan.stats().join_size}\n")

    # a = 2 aggregates means faithful mode can over-report (see
    # DESIGN.md errata); exact mode guarantees the true skyline.
    warnings.simplefilter("ignore", SoundnessWarning)

    print(f"{'k':>3} {'algorithm':<10} {'skyline':>8} {'total s':>9} "
          f"{'grouping':>9} {'join':>7} {'dominator':>10} {'remaining':>10}")
    for k in (6, 7, 8):
        for algorithm in ("grouping", "dominator", "naive"):
            result = (
                engine.query("outbound", "inbound")
                .aggregate("sum").algorithm(algorithm).mode("exact")
                .run(k=k)
            )
            t = result.timings
            print(f"{k:>3} {algorithm:<10} {result.count:>8} {t.total:>9.4f} "
                  f"{t.grouping:>9.4f} {t.join:>7.4f} {t.dominator:>10.4f} "
                  f"{t.remaining:>10.4f}")

    info = engine.cache_info()
    print(f"\nplan cache: {info['size']} plan for {info['requests']} queries "
          f"({info['hits']} hits) — join preparation was paid once")

    # Show the top itineraries for k = 6 sorted by total cost.
    result = (
        engine.query("outbound", "inbound")
        .aggregate("sum").mode("exact")
        .run(k=6)
    )
    skyline = result.to_relation(name="itineraries")
    print(f"\n{result.count} skyline itineraries at k=6; 5 cheapest:")
    for rec in skyline.sort_by("cost").head(5).records():
        out_leg = outbound.record(rec["_left_row"])
        in_leg = inbound.record(rec["_right_row"])
        print(f"  via {out_leg['via']:<10} total cost {rec['cost']:>8.0f}  "
              f"total time {rec['fly_time']:.2f}h  "
              f"popularity {out_leg['popularity']:.0f}/{in_leg['popularity']:.0f}")

    serving_demo(engine)


def serving_demo(engine: "repro.Engine") -> None:
    """Client-mode tour of the HTTP front-end (docs/serving.md):
    a 50 ms deadline yields a partial-but-correct shortlist, the
    unbounded rerun yields the exact answer."""
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    server = KSJQServer(engine, ServingConfig(workers=2))
    asyncio.run_coroutine_threadsafe(server.start(), loop).result(10)
    print(f"\nserving demo: engine now listening on {server.address}")

    def post_query(payload: dict) -> dict:
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=60)
        conn.request("POST", "/query", body=json.dumps(payload).encode())
        body = json.loads(conn.getresponse().read())
        conn.close()
        return body

    try:
        query = {"datasets": ["outbound", "inbound"], "k": 8,
                 "algorithm": "grouping", "mode": "exact", "aggregate": "sum"}
        rushed = post_query({**query, "deadline_ms": 50})
        full = post_query(query)
        exact = {tuple(p) for p in full["pairs"]}
        got = {tuple(p) for p in rushed["pairs"]}
        if rushed["partial"]:
            print(f"  50 ms budget: {rushed['count']}/{full['count']} "
                  f"itineraries after {rushed['elapsed'] * 1000:.0f} ms "
                  f"({rushed['error']['code']})")
        else:  # a fast machine finished inside the budget — also fine
            print(f"  50 ms budget: query completed in "
                  f"{rushed['elapsed'] * 1000:.0f} ms, no partial needed")
        assert got <= exact, "a partial answer is always a subset"
        print(f"  unbounded rerun: {full['count']} itineraries "
              f"({full['elapsed'] * 1000:.0f} ms) — partial was a subset: "
              f"{got <= exact}")
    finally:
        asyncio.run_coroutine_threadsafe(server.stop(), loop).result(10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        loop.close()


if __name__ == "__main__":
    main()
