#!/usr/bin/env python
"""Choosing k from a desired answer size (Problems 3-4, Algorithms 4-6).

"A user may find it easier to specify a value of delta objects that she
is interested in examining more thoroughly rather than a value of k"
(paper Sec. 1). This example sweeps delta over synthetic data and
compares the three find-k strategies — naive linear scan, range-based
(bound-assisted) scan, and binary search — on answer and probe counts,
mirroring the paper's Fig. 8a.

All queries go through one :class:`repro.Engine`, so the join is
prepared once and every subsequent query (skyline staircase, fifteen
find-k runs) reuses the cached plan.

Run:  python examples/tune_k.py
"""

import repro
from repro.datagen import generate_relation_pair


def main() -> None:
    left, right = generate_relation_pair(
        n=300, d=5, g=10, distribution="independent", a=0, seed=42
    )
    engine = repro.Engine()
    joined = len(engine.plan(left, right).view())
    print(f"base relations: n={len(left)}, d=5, g=10 -> joined size {joined}")

    # The skyline-size staircase the search strategies navigate.
    print("\nskyline sizes by k (Lemma 1: monotone non-decreasing):")
    for k in range(6, 11):
        count = engine.query(left, right).k(k).run().count
        print(f"  k={k:>2}: {count}")

    print(f"\n{'delta':>8} {'k':>3} | {'naive':>14} {'range':>14} {'binary':>14}"
          f"   (full evaluations / probes)")
    for delta in (1, 10, 100, 1000, 10_000):
        row = {}
        for method in ("naive", "range", "binary"):
            row[method] = engine.query(left, right).find_k(delta=delta, method=method)
        ks = {r.k for r in row.values()}
        assert len(ks) == 1, "methods disagree!"
        print(f"{delta:>8} {row['binary'].k:>3} | "
              + " ".join(
                  f"{row[m].full_evaluations:>6}/{len(row[m].steps):<7}"
                  for m in ("naive", "range", "binary")
              ))

    print("\nbinary-search trace for delta=100:")
    print(engine.query(left, right).find_k(delta=100, method="binary").summary())

    info = engine.cache_info()
    print(f"\nplan cache: {info['requests']} requests, {info['hits']} hits "
          f"-> join prepared {info['misses']} time(s)")


if __name__ == "__main__":
    main()
